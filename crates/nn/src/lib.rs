//! # graf-nn
//!
//! A from-scratch neural-network substrate replacing the paper's
//! PyTorch/torch-geometric stack (§4). It provides exactly what GRAF's
//! latency prediction model and configuration solver need:
//!
//! * [`Matrix`] — a dense row-major `f64` matrix with the linear-algebra ops
//!   the MLPs use,
//! * [`Mlp`] — multi-layer perceptrons with ReLU activations and dropout,
//!   implemented in a *stateless-trace* style: `forward` returns a
//!   [`mlp::MlpTrace`] so the same network can be applied many times within
//!   one computation graph (as message passing requires) and each application
//!   back-propagated independently, with parameter gradients accumulating,
//! * [`Adam`] — the Adam optimizer (Kingma & Ba), which the paper uses both
//!   for training (§3.4) and for the configuration solver's gradient descent
//!   over resources (§3.5),
//! * [`loss`] — losses including the paper's asymmetric Hüber on percentage
//!   error (eq. 4) with `θ_L = 0.1`, `θ_R = 0.3` (Table 1).
//!
//! Backward passes also expose gradients **with respect to inputs**, which is
//! the mechanism the configuration solver uses to differentiate predicted
//! latency with respect to CPU quotas.
//!
//! The training/solver hot loops run on the allocation-free kernel layer:
//! `Matrix`'s `*_into`/`*_acc` kernels, the [`Workspace`] scratch pool, and
//! the [`mlp::MlpGrads`] external gradient sink (see `Mlp::forward_into` /
//! `Mlp::backward_with`).
//!
//! **Invariants.** Kernels are pure `f64` arithmetic in fixed iteration
//! order — no threads, no randomness, no reordered reductions — so results
//! are bit-identical across runs and machines with the same FP semantics.
//! Dropout masks come from caller-provided seeded RNGs. The `sanitize`
//! feature's counting allocator proves the `*_into`/`*_acc` paths allocate
//! nothing after warm-up.

// The `sanitize` feature's counting global allocator is the one sanctioned
// use of `unsafe` (the GlobalAlloc contract); it opts out of the deny locally.
// Without the feature the whole crate remains forbid-clean.
#![cfg_attr(not(feature = "sanitize"), forbid(unsafe_code))]
#![cfg_attr(feature = "sanitize", deny(unsafe_code))]
#![deny(missing_docs)]

pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod param;
#[cfg(feature = "sanitize")]
pub mod sanitize;
pub mod workspace;

pub use loss::AsymmetricHuber;
pub use matrix::Matrix;
pub use mlp::{Mlp, MlpGrads, MlpTrace, Mode};
pub use optim::Adam;
pub use param::Param;
pub use workspace::Workspace;
