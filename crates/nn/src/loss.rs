//! Loss functions, including the paper's asymmetric Hüber percentage loss.

/// Mean-squared error over two equal-length slices, plus per-element
/// gradient with respect to the prediction.
pub fn mse(pred: &[f64], label: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(pred.len(), label.len());
    let n = pred.len().max(1) as f64;
    let mut loss = 0.0;
    let grad = pred
        .iter()
        .zip(label)
        .map(|(&p, &y)| {
            let d = p - y;
            loss += d * d;
            2.0 * d / n
        })
        .collect();
    (loss / n, grad)
}

/// The asymmetric Hüber loss on *percentage error* of eq. (4), with the
/// paper's Table-1 constants `θ_L = 0.1`, `θ_R = 0.3`.
///
/// The percentage error is `x = (label − pred) / label`: positive `x` means
/// the model predicted a latency *shorter* than reality (underestimation),
/// which is the dangerous direction for SLO compliance, so it stays in the
/// quadratic regime up to the larger `θ_R` (accumulating more loss) while
/// overestimation is linearized early at `θ_L` with a gentle slope. Outside
/// the quadratic band the loss is `θ(2|x| − θ)`, the standard Hüber
/// continuation (the paper's eq. 4 prints `θ_R(2x + θ_R)` for the right
/// branch, which is discontinuous at `x = θ_R`; we use the continuous form).
#[derive(Clone, Copy, Debug)]
pub struct AsymmetricHuber {
    /// Left threshold: overestimation band (paper: 0.1).
    pub theta_l: f64,
    /// Right threshold: underestimation band (paper: 0.3).
    pub theta_r: f64,
}

impl Default for AsymmetricHuber {
    fn default() -> Self {
        Self { theta_l: 0.1, theta_r: 0.3 }
    }
}

impl AsymmetricHuber {
    /// Loss and `dLoss/dx` for a single percentage error `x`.
    pub fn at(&self, x: f64) -> (f64, f64) {
        if x < -self.theta_l {
            // Overestimation beyond θ_L: linear, gentle slope −2θ_L.
            (self.theta_l * (-2.0 * x - self.theta_l), -2.0 * self.theta_l)
        } else if x < self.theta_r {
            (x * x, 2.0 * x)
        } else {
            // Underestimation beyond θ_R: linear with slope 2θ_R.
            (self.theta_r * (2.0 * x - self.theta_r), 2.0 * self.theta_r)
        }
    }

    /// Mean loss over a batch and the gradient with respect to each
    /// prediction (`dLoss/dpred`, already including `dx/dpred = −1/label`).
    ///
    /// Labels must be positive (latencies are).
    pub fn batch(&self, pred: &[f64], label: &[f64]) -> (f64, Vec<f64>) {
        let mut grad = vec![0.0; pred.len()];
        let loss = self.batch_into(pred, label, &mut grad);
        (loss, grad)
    }

    /// Like [`AsymmetricHuber::batch`], but writes the gradient into a
    /// caller-provided buffer (same length as `pred`) instead of
    /// allocating — the hot-loop variant.
    pub fn batch_into(&self, pred: &[f64], label: &[f64], grad: &mut [f64]) -> f64 {
        assert_eq!(pred.len(), label.len());
        assert_eq!(pred.len(), grad.len());
        let n = pred.len().max(1) as f64;
        let mut total = 0.0;
        for ((g, &p), &y) in grad.iter_mut().zip(pred).zip(label) {
            let y = y.max(1e-9);
            let x = (y - p) / y;
            let (l, dldx) = self.at(x);
            total += l;
            *g = dldx * (-1.0 / y) / n;
        }
        total / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known_value() {
        let (l, g) = mse(&[1.0, 2.0], &[0.0, 4.0]);
        assert!((l - (1.0 + 4.0) / 2.0).abs() < 1e-12);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn huber_is_continuous_at_thresholds() {
        let h = AsymmetricHuber::default();
        for &t in &[-h.theta_l, h.theta_r] {
            let (below, _) = h.at(t - 1e-9);
            let (above, _) = h.at(t + 1e-9);
            assert!((below - above).abs() < 1e-6, "discontinuity at {t}");
        }
    }

    #[test]
    fn quadratic_inside_band() {
        let h = AsymmetricHuber::default();
        let (l, g) = h.at(0.05);
        assert!((l - 0.0025).abs() < 1e-12);
        assert!((g - 0.1).abs() < 1e-12);
    }

    #[test]
    fn underestimation_costs_more_than_overestimation() {
        let h = AsymmetricHuber::default();
        // Same magnitude of error on both sides, beyond both thresholds.
        let (over, _) = h.at(-0.5); // predicted 50% above actual
        let (under, _) = h.at(0.5); // predicted 50% below actual
        assert!(
            under > over,
            "underestimation ({under}) must cost more than overestimation ({over})"
        );
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let h = AsymmetricHuber::default();
        for &x in &[-0.5, -0.11, -0.05, 0.0, 0.1, 0.29, 0.31, 1.5] {
            let (_, g) = h.at(x);
            let eps = 1e-7;
            let num = (h.at(x + eps).0 - h.at(x - eps).0) / (2.0 * eps);
            assert!((g - num).abs() < 1e-5, "at x={x}: {g} vs {num}");
        }
    }

    #[test]
    fn batch_gradient_direction_pushes_up_when_underestimating() {
        let h = AsymmetricHuber::default();
        // pred far below label → gradient on pred must be negative (loss
        // decreases when pred increases).
        let (_, g) = h.batch(&[50.0], &[100.0]);
        assert!(g[0] < 0.0, "gradient {g:?} should push prediction up");
        // pred above label → positive gradient pulls it down.
        let (_, g) = h.batch(&[150.0], &[100.0]);
        assert!(g[0] > 0.0);
    }
}
