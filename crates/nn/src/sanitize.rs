//! Allocation sanitizer (the `sanitize` cargo feature).
//!
//! Installs a counting [`GlobalAlloc`] wrapper over the system allocator and
//! exposes [`assert_no_alloc`] / [`alloc_delta`] so tests can *prove* that a
//! hot path — one training step, one solver iteration — performs zero heap
//! allocations in steady state, rather than inferring it from workspace
//! statistics.
//!
//! The counter is thread-local and const-initialised, so reading it never
//! allocates (no lazy TLS init) and parallel test threads do not interfere
//! with each other's measurements. This pairs with the compute layer's
//! `threads <= 1` inline path: the measured work must stay on the measuring
//! thread.
//!
//! This is the only module in the crate allowed to use `unsafe` (the
//! [`GlobalAlloc`] contract requires it); everything else stays under
//! `deny(unsafe_code)`, and without the feature the whole crate is
//! `forbid(unsafe_code)`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A [`System`] wrapper that counts allocations per thread.
pub struct CountingAlloc;

#[allow(unsafe_code)]
// SAFETY: every method delegates to `System`, which upholds the GlobalAlloc
// contract; the counter update has no effect on the returned memory.
// graf-lint: safety(every method delegates verbatim to the System allocator)
unsafe impl GlobalAlloc for CountingAlloc {
    // graf-lint: safety(unsafe is required by the trait; body only counts)
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        // graf-lint: safety(layout forwarded unchanged; caller upholds the contract)
        unsafe { System.alloc(layout) }
    }

    // graf-lint: safety(unsafe is required by the trait; body only delegates)
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // graf-lint: safety(ptr and layout forwarded unchanged from our alloc)
        unsafe { System.dealloc(ptr, layout) }
    }

    // graf-lint: safety(unsafe is required by the trait; body only counts)
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves (or grows) is an allocation for our purposes:
        // a steady-state hot path must not grow its buffers.
        ALLOCS.with(|c| c.set(c.get() + 1));
        // graf-lint: safety(ptr and layout forwarded unchanged from our alloc)
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations made by the current thread so far.
pub fn alloc_count() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Runs `f`, returning its result and the number of heap allocations the
/// current thread made while it ran.
pub fn alloc_delta<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = alloc_count();
    let out = f();
    (out, alloc_count() - before)
}

/// Asserts that `f` performs **zero** heap allocations on this thread.
///
/// `label` names the measured region in the failure message. Returns `f`'s
/// result so the caller can keep asserting on it.
pub fn assert_no_alloc<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let (out, n) = alloc_delta(f);
    assert_eq!(n, 0, "{label}: expected zero heap allocations in steady state, observed {n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_an_allocation() {
        let ((), n) = alloc_delta(|| {
            let v: Vec<u64> = Vec::with_capacity(8);
            drop(v);
        });
        assert!(n >= 1, "Vec::with_capacity must register, saw {n}");
    }

    #[test]
    fn pure_arithmetic_is_allocation_free() {
        let (sum, n) = alloc_delta(|| (0u64..100).sum::<u64>());
        assert_eq!(sum, 4950);
        assert_eq!(n, 0);
    }

    #[test]
    #[should_panic(expected = "zero heap allocations")]
    fn assert_no_alloc_catches_a_leaky_region() {
        assert_no_alloc("leaky", || {
            let v = vec![1u8, 2, 3];
            drop(v);
        });
    }
}
