//! Trainable parameters with accumulated gradients and Adam state.

use crate::matrix::Matrix;

/// A trainable tensor: value, accumulated gradient and Adam moments.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (zeroed by the optimizer after each step).
    pub grad: Matrix,
    /// Adam first moment.
    pub m: Matrix,
    /// Adam second moment.
    pub v: Matrix,
}

impl Param {
    /// Wraps an initial value with zeroed gradient and moments.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = (value.rows(), value.cols());
        Self { value, grad: Matrix::zeros(r, c), m: Matrix::zeros(r, c), v: Matrix::zeros(r, c) }
    }

    /// Accumulates `g` into the gradient.
    pub fn accumulate(&mut self, g: &Matrix) {
        self.grad.add_assign(g);
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.rows() * self.value.cols()
    }

    /// `true` when the parameter is empty (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        let g = Matrix::from_fn(2, 2, |_, _| 1.5);
        p.accumulate(&g);
        p.accumulate(&g);
        assert_eq!(p.grad.get(1, 1), 3.0);
        p.zero_grad();
        assert_eq!(p.grad.get(0, 0), 0.0);
        assert_eq!(p.len(), 4);
    }
}
