//! Online Boutique (Google microservices-demo), paper Figure 4.
//!
//! The paper controls six microservices (Figures 13/15 label them MS1–MS6).
//! We model those six; the demo's remaining services (ads, checkout, email,
//! payment) are not on the three evaluated request paths.
//!
//! Service indices (= the paper's MS numbering):
//!
//! | id | service            | role in the cart-page chain (Fig 4)      |
//! |----|--------------------|-------------------------------------------|
//! | 0  | frontend (MS1)     | entry point, fans out sequentially         |
//! | 1  | currency (MS2)     | called on every page                       |
//! | 2  | cart (MS3)         | cart reads/writes                          |
//! | 3  | product (MS4)      | catalog lookups (several per page)         |
//! | 4  | recommendation (MS5)| heavy ML-ish service, calls product        |
//! | 5  | shipping (MS6)     | quote computation                          |
//!
//! Recommendation and shipping get the steepest latency curves: GRAF's
//! optimizer shifts CPU toward them (Fig 15: "GRAF allocates more CPU
//! resources to MS5 … and MS6 … and saves from others").

use graf_sim::topology::{ApiSpec, AppTopology, CallNode, ServiceSpec};

/// Frontend service index (MS1).
pub const FRONTEND: u16 = 0;
/// Currency service index (MS2).
pub const CURRENCY: u16 = 1;
/// Cart service index (MS3).
pub const CART: u16 = 2;
/// Product-catalog service index (MS4).
pub const PRODUCT: u16 = 3;
/// Recommendation service index (MS5).
pub const RECOMMENDATION: u16 = 4;
/// Shipping service index (MS6).
pub const SHIPPING: u16 = 5;

/// The "home page" API index.
pub const API_HOME: u16 = 0;
/// The "browse product" API index.
pub const API_BROWSE: u16 = 1;
/// The "cart page" API index (the chain of Figure 4 and the surge workload).
pub const API_CART: u16 = 2;

/// Builds the Online Boutique topology.
pub fn online_boutique() -> AppTopology {
    let services = vec![
        ServiceSpec::new("frontend", 0.50, 700).cv(0.45),
        ServiceSpec::new("currency", 0.16, 250).cv(0.25),
        ServiceSpec::new("cart", 0.38, 350).cv(0.50),
        ServiceSpec::new("product", 0.25, 250).cv(0.35),
        ServiceSpec::new("recommendation", 1.00, 500).cv(0.90),
        ServiceSpec::new("shipping", 0.75, 400).cv(0.75),
    ];

    // Home: frontend → currency, then a batch of product lookups, then cart
    // badge. Sequential fan-out, as the paper describes the frontend.
    let home = CallNode::new(FRONTEND)
        .call(CallNode::new(CURRENCY))
        .then(vec![CallNode::new(PRODUCT).repeat(3).work_scale(0.7)])
        .call(CallNode::new(CART).work_scale(0.5));

    // Browse: frontend → currency → product detail → recommendation (which
    // itself consults the catalog) → cart badge.
    let browse = CallNode::new(FRONTEND)
        .call(CallNode::new(CURRENCY))
        .call(CallNode::new(PRODUCT))
        .call(CallNode::new(RECOMMENDATION).call(CallNode::new(PRODUCT).work_scale(0.6)))
        .call(CallNode::new(CART).work_scale(0.5));

    // Cart page (Figure 4's chain, the workload of the surge experiments):
    // frontend → currency → cart → recommendation(→product) → product →
    // shipping quote.
    let cart_page = CallNode::new(FRONTEND)
        .call(CallNode::new(CURRENCY))
        .call(CallNode::new(CART))
        .call(CallNode::new(RECOMMENDATION).call(CallNode::new(PRODUCT).work_scale(0.6)))
        .call(CallNode::new(PRODUCT).work_scale(0.8))
        .call(CallNode::new(SHIPPING));

    AppTopology::new(
        "online-boutique",
        services,
        vec![
            ApiSpec::new("home", home),
            ApiSpec::new("browse", browse),
            ApiSpec::new("cart-page", cart_page),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_sim::topology::{ApiId, ServiceId};

    #[test]
    fn has_six_controlled_services_and_three_apis() {
        let t = online_boutique();
        assert_eq!(t.num_services(), 6);
        assert_eq!(t.num_apis(), 3);
    }

    #[test]
    fn cart_page_chain_matches_figure4() {
        let t = online_boutique();
        let services = t.services_in_api(ApiId(API_CART));
        assert_eq!(
            services,
            (0..6).map(ServiceId).collect::<Vec<_>>(),
            "cart page touches all six controlled services"
        );
    }

    #[test]
    fn home_page_skips_recommendation_and_shipping() {
        let t = online_boutique();
        let services = t.services_in_api(ApiId(API_HOME));
        assert!(!services.contains(&ServiceId(RECOMMENDATION)));
        assert!(!services.contains(&ServiceId(SHIPPING)));
    }

    #[test]
    fn product_multiplicity_reflects_batching() {
        let t = online_boutique();
        assert_eq!(t.multiplicity(ApiId(API_HOME), ServiceId(PRODUCT)), 3.0);
        assert_eq!(t.multiplicity(ApiId(API_BROWSE), ServiceId(PRODUCT)), 2.0);
        assert_eq!(t.multiplicity(ApiId(API_CART), ServiceId(FRONTEND)), 1.0);
    }

    #[test]
    fn recommendation_calls_product() {
        let t = online_boutique();
        let edges = t.edges();
        assert!(edges.contains(&(ServiceId(RECOMMENDATION), ServiceId(PRODUCT))));
        assert!(edges.contains(&(ServiceId(FRONTEND), ServiceId(SHIPPING))));
    }
}
