//! Istio's Bookinfo, paper Figure 5 (right).
//!
//! Bookinfo illustrates the second §2.2 observation: Product Page calls
//! Details and Reviews *in parallel*, and Reviews calls Ratings, so the
//! end-to-end latency is `productpage + max(details, reviews + ratings)`.
//! Reducing Details' CPU is free until its latency exceeds the
//! Reviews+Ratings branch — exactly the slack GRAF's optimizer exploits.

use graf_sim::topology::{ApiSpec, AppTopology, CallNode, ServiceSpec};

/// Product Page front end.
pub const PRODUCT_PAGE: u16 = 0;
/// Details service (off the critical path at equal provisioning).
pub const DETAILS: u16 = 1;
/// Reviews service.
pub const REVIEWS: u16 = 2;
/// Ratings service (called by Reviews).
pub const RATINGS: u16 = 3;

/// The product-page API index.
pub const API_PRODUCT_PAGE: u16 = 0;

/// Builds the Bookinfo topology.
pub fn bookinfo() -> AppTopology {
    let services = vec![
        ServiceSpec::new("productpage", 0.40, 400).cv(0.40),
        ServiceSpec::new("details", 0.40, 250).cv(0.40),
        ServiceSpec::new("reviews", 0.96, 300).cv(0.50),
        ServiceSpec::new("ratings", 0.56, 250).cv(0.45),
    ];

    let page = CallNode::new(PRODUCT_PAGE)
        .then(vec![CallNode::new(DETAILS), CallNode::new(REVIEWS).call(CallNode::new(RATINGS))]);

    AppTopology::new("bookinfo", services, vec![ApiSpec::new("product-page", page)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_sim::time::SimTime;
    use graf_sim::topology::{ApiId, ServiceId};
    use graf_sim::world::{SimConfig, World};

    #[test]
    fn structure_matches_figure5() {
        let t = bookinfo();
        let edges = t.edges();
        assert_eq!(
            edges,
            vec![
                (ServiceId(PRODUCT_PAGE), ServiceId(DETAILS)),
                (ServiceId(PRODUCT_PAGE), ServiceId(REVIEWS)),
                (ServiceId(REVIEWS), ServiceId(RATINGS)),
            ]
        );
    }

    /// §2.2's claim: shrinking Details' CPU does not change end-to-end
    /// latency while the Reviews branch dominates.
    #[test]
    fn details_is_off_the_critical_path() {
        fn p50_with_details_quota(quota: f64) -> u64 {
            let mut w = World::new(bookinfo(), SimConfig::default(), 17);
            for s in 0..4u16 {
                let q = if s == DETAILS { quota } else { 1000.0 };
                w.add_instances(ServiceId(s), 1, q, SimTime::ZERO);
            }
            for i in 0..500u64 {
                w.inject(ApiId(API_PRODUCT_PAGE), SimTime(i * 20_000)); // 50 qps
            }
            w.run_until(SimTime::from_secs(20.0));
            let mut lats: Vec<u64> = w.drain_completions().iter().map(|c| c.latency_us()).collect();
            lats.sort_unstable();
            lats[lats.len() / 2]
        }
        let full = p50_with_details_quota(1000.0);
        let halved = p50_with_details_quota(400.0);
        let rel = (halved as f64 - full as f64).abs() / full as f64;
        assert!(rel < 0.08, "halving details barely moves p50: {full} vs {halved}");
        // But starving it below the branch latency does hurt.
        let starved = p50_with_details_quota(60.0);
        assert!(starved as f64 > full as f64 * 1.15, "starved details hurts: {starved}");
    }
}
