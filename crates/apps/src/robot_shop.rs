//! Stan's Robot Shop, paper Figure 5 (left).
//!
//! The paper uses Robot Shop to illustrate §2.2: the Catalogue service has a
//! much sharper latency-vs-CPU curve than Web, so shifting CPU toward
//! Catalogue buys latency cheaply. We model the browse path (web →
//! catalogue, with ratings fetched in parallel) plus user and cart APIs.

use graf_sim::topology::{ApiSpec, AppTopology, CallNode, ServiceSpec};

/// Web front end.
pub const WEB: u16 = 0;
/// Catalogue service (the sharp-curve service of Figure 6).
pub const CATALOGUE: u16 = 1;
/// Ratings service.
pub const RATINGS: u16 = 2;
/// User service.
pub const USER: u16 = 3;
/// Cart service.
pub const CART: u16 = 4;

/// Browse-catalogue API index.
pub const API_BROWSE: u16 = 0;
/// User-login API index.
pub const API_USER: u16 = 1;
/// Cart API index.
pub const API_CART: u16 = 2;

/// Builds the Robot Shop topology.
///
/// Catalogue's per-request CPU demand is ~4× Web's, giving it the visibly
/// sharper latency curve of Figure 6.
pub fn robot_shop() -> AppTopology {
    let services = vec![
        ServiceSpec::new("web", 0.36, 500).cv(0.40),
        ServiceSpec::new("catalogue", 1.44, 300).cv(0.55),
        ServiceSpec::new("ratings", 0.40, 250).cv(0.45),
        ServiceSpec::new("user", 0.32, 250).cv(0.40),
        ServiceSpec::new("cart", 0.44, 300).cv(0.45),
    ];

    let browse = CallNode::new(WEB).then(vec![CallNode::new(CATALOGUE), CallNode::new(RATINGS)]);
    let user = CallNode::new(WEB).call(CallNode::new(USER));
    let cart =
        CallNode::new(WEB).call(CallNode::new(CART)).call(CallNode::new(CATALOGUE).work_scale(0.5));

    AppTopology::new(
        "robot-shop",
        services,
        vec![
            ApiSpec::new("browse", browse),
            ApiSpec::new("user", user),
            ApiSpec::new("cart", cart),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_sim::topology::{ApiId, ServiceId};

    #[test]
    fn catalogue_demand_dominates_web() {
        let t = robot_shop();
        assert!(t.services[CATALOGUE as usize].work_ms > 3.0 * t.services[WEB as usize].work_ms);
    }

    #[test]
    fn browse_hits_catalogue_and_ratings_in_parallel() {
        let t = robot_shop();
        let services = t.services_in_api(ApiId(API_BROWSE));
        assert_eq!(services, vec![ServiceId(WEB), ServiceId(CATALOGUE), ServiceId(RATINGS)]);
        // Parallel: both children live in one stage of the web root.
        let root = &t.apis[API_BROWSE as usize].tree;
        assert_eq!(root.stages.len(), 1);
        assert_eq!(root.stages[0].len(), 2);
    }

    #[test]
    fn three_apis_cover_all_services() {
        let t = robot_shop();
        let mut seen: Vec<ServiceId> = Vec::new();
        for api in 0..t.num_apis() {
            seen.extend(t.services_in_api(ApiId(api as u16)));
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), t.num_services());
    }
}
