//! Social Network (DeathStarBench), paper Figure 10.
//!
//! The paper controls ten microservices on the post-compose path (Figure 16
//! labels them MS1–MS10) and drives them with Vegeta post-compose requests.
//!
//! The modeled flow follows Figure 10: NGINX receives the request and hands
//! it to compose-post, which fans out in parallel to unique-id, media, user
//! and text (text in turn resolves user-mentions and URLs in parallel), then
//! writes the post to post-storage, which updates the user-timeline.

use graf_sim::topology::{ApiSpec, AppTopology, CallNode, ServiceSpec};

/// NGINX front end (MS1).
pub const NGINX: u16 = 0;
/// compose-post orchestration service (MS2).
pub const COMPOSE_POST: u16 = 1;
/// unique-id generator (MS3).
pub const UNIQUE_ID: u16 = 2;
/// media service (MS4).
pub const MEDIA: u16 = 3;
/// user service (MS5).
pub const USER: u16 = 4;
/// text service (MS6).
pub const TEXT: u16 = 5;
/// user-mention resolver (MS7).
pub const USER_MENTION: u16 = 6;
/// url-shorten service (MS8).
pub const URL_SHORTEN: u16 = 7;
/// post-storage (MS9).
pub const POST_STORAGE: u16 = 8;
/// user-timeline (MS10).
pub const USER_TIMELINE: u16 = 9;

/// The post-compose API index (the only API the paper drives, via Vegeta).
pub const API_COMPOSE: u16 = 0;

/// Builds the Social Network topology.
pub fn social_network() -> AppTopology {
    let services = vec![
        ServiceSpec::new("nginx", 0.23, 300).cv(0.35),
        ServiceSpec::new("compose-post", 0.60, 400).cv(0.50),
        ServiceSpec::new("unique-id", 0.10, 150).cv(0.20),
        ServiceSpec::new("media", 0.73, 350).cv(0.85),
        ServiceSpec::new("user", 0.30, 250).cv(0.45),
        ServiceSpec::new("text", 0.50, 300).cv(0.50),
        ServiceSpec::new("user-mention", 0.27, 250).cv(0.45),
        ServiceSpec::new("url-shorten", 0.20, 250).cv(0.30),
        ServiceSpec::new("post-storage", 0.63, 400).cv(0.70),
        ServiceSpec::new("user-timeline", 0.37, 300).cv(0.45),
    ];

    // compose-post: parallel fan-out, then storage, which updates the timeline.
    let compose = CallNode::new(NGINX).call(
        CallNode::new(COMPOSE_POST)
            .then(vec![
                CallNode::new(UNIQUE_ID),
                CallNode::new(MEDIA),
                CallNode::new(USER),
                CallNode::new(TEXT)
                    .then(vec![CallNode::new(USER_MENTION), CallNode::new(URL_SHORTEN)]),
            ])
            .call(CallNode::new(POST_STORAGE).call(CallNode::new(USER_TIMELINE))),
    );

    AppTopology::new("social-network", services, vec![ApiSpec::new("post-compose", compose)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_sim::topology::{ApiId, ServiceId};

    #[test]
    fn has_ten_controlled_services() {
        let t = social_network();
        assert_eq!(t.num_services(), 10);
        assert_eq!(t.num_apis(), 1);
    }

    #[test]
    fn compose_touches_every_service() {
        let t = social_network();
        let services = t.services_in_api(ApiId(API_COMPOSE));
        assert_eq!(services.len(), 10, "all ten services on the compose path");
    }

    #[test]
    fn figure10_edges_present() {
        let t = social_network();
        let edges = t.edges();
        for (p, c) in [
            (NGINX, COMPOSE_POST),
            (COMPOSE_POST, UNIQUE_ID),
            (COMPOSE_POST, MEDIA),
            (COMPOSE_POST, USER),
            (COMPOSE_POST, TEXT),
            (TEXT, USER_MENTION),
            (TEXT, URL_SHORTEN),
            (COMPOSE_POST, POST_STORAGE),
            (POST_STORAGE, USER_TIMELINE),
        ] {
            assert!(edges.contains(&(ServiceId(p), ServiceId(c))), "missing edge {p}->{c}");
        }
        assert_eq!(edges.len(), 9);
    }

    #[test]
    fn every_service_called_once_per_post() {
        let t = social_network();
        for s in 0..10 {
            assert_eq!(t.multiplicity(ApiId(API_COMPOSE), ServiceId(s)), 1.0);
        }
    }
}
