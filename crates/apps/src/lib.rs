//! # graf-apps
//!
//! Models of the open-source benchmark applications the paper evaluates on
//! (§5, Figures 4/5/10), expressed as `graf-sim` topologies:
//!
//! * [`online_boutique`] — Google's Online Boutique demo; 6 controlled
//!   microservices (the paper's MS1–MS6) and three front-end APIs, matching
//!   "Locust generates workloads composed of three multi APIs".
//! * [`social_network`] — DeathStarBench's Social Network; 10 controlled
//!   microservices on the post-compose path (the paper's MS1–MS10, Fig 10).
//! * [`robot_shop()`](robot_shop::robot_shop) — Stan's Robot Shop (Fig 5 left), whose Web vs Catalogue
//!   latency curves motivate §2.2.
//! * [`bookinfo()`](bookinfo::bookinfo) — Istio's Bookinfo (Fig 5 right), whose Details ∥
//!   Reviews→Ratings parallelism shows why off-critical-path services don't
//!   deserve extra CPU.
//!
//! Service CPU demands are calibrated so that the qualitative properties the
//! paper exploits hold: every service has a monotone convex latency-vs-quota
//! curve with a different steepness (Fig 6), some services are far more
//! latency-sensitive than others (Online Boutique's recommendation/shipping,
//! which GRAF deliberately over-allocates in Fig 15), and parallel branches
//! create `max()`-shaped end-to-end latency (Bookinfo).
//!
//! **Invariants.** Topologies are pure data: constructors take no seeds,
//! draw no randomness and always return the same `AppTopology`, so every
//! experiment's application model is reproducible by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bookinfo;
pub mod boutique;
pub mod robot_shop;
pub mod social;

pub use bookinfo::bookinfo;
pub use boutique::online_boutique;
pub use robot_shop::robot_shop;
pub use social::social_network;

use graf_sim::topology::AppTopology;

/// All benchmark applications, for sweep-style experiments.
pub fn all_apps() -> Vec<AppTopology> {
    vec![online_boutique(), social_network(), robot_shop(), bookinfo()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_sim::time::SimTime;
    use graf_sim::topology::{ApiId, ServiceId};
    use graf_sim::world::{SimConfig, World};

    /// Smoke-runs every app: one instance per service, light load, and checks
    /// that all requests complete and touch the expected services.
    #[test]
    fn all_apps_execute_end_to_end() {
        for topo in all_apps() {
            let name = topo.name.clone();
            let napis = topo.num_apis();
            let nsvc = topo.num_services();
            let mut world = World::new(topo, SimConfig::default(), 99);
            for s in 0..nsvc {
                world.add_instances(ServiceId(s as u16), 1, 1000.0, SimTime::ZERO);
            }
            for api in 0..napis {
                for i in 0..50u64 {
                    world.inject(ApiId(api as u16), SimTime(i * 20_000 + api as u64));
                }
            }
            world.run_until(SimTime::from_secs(30.0));
            let done = world.drain_completions();
            assert_eq!(done.len(), 50 * napis, "{name}: all requests complete");
            assert!(done.iter().all(|c| c.latency_us() > 0), "{name}: latencies positive");
        }
    }

    #[test]
    fn every_app_has_connected_edges() {
        for topo in all_apps() {
            let edges = topo.edges();
            assert!(!edges.is_empty(), "{} must have call edges", topo.name);
            // Every non-root service of each API is reachable from its root.
            for api in 0..topo.num_apis() {
                let services = topo.services_in_api(ApiId(api as u16));
                assert!(!services.is_empty());
            }
        }
    }
}
