//! # graf-chaos
//!
//! Deterministic fault injection for the GRAF control loop.
//!
//! The paper's framework runs against a real Kubernetes cluster where traces
//! go missing, metric scrapes lag, and instance creation fails; this crate
//! reproduces those failure modes inside the simulation so the degradation
//! paths the paper implicitly relies on (§3.7 anomaly handling, fallback to
//! threshold scaling) can be exercised and measured. Each fault is a
//! schedule-driven [`FaultSpec`] window; a [`ChaosSchedule`] composes them and
//! hands out per-consumer [`ChaosEngine`]s that the simulator, the cluster
//! control plane and the resource controller query at decision points.
//!
//! ## Fault catalog
//!
//! | fault | injected where | control-loop stage it corrupts |
//! |---|---|---|
//! | [`FaultKind::TraceDrop`] | span recording in `graf-sim` | workload analyzer (partial call graphs) |
//! | [`FaultKind::MetricNan`] | controller's metric scrape | per-API rate signal (NaN/gap windows) |
//! | [`FaultKind::MetricStale`] | controller's metric scrape | per-API rate signal (delayed reads) |
//! | [`FaultKind::StaleModel`] | controller's metric scrape | solver input (frozen snapshot) |
//! | [`FaultKind::CreationFail`] | `Cluster::set_desired` | instance creation (batch lost) |
//! | [`FaultKind::SlowStart`] | `Cluster::set_desired` | instance creation (multiplied delay) |
//! | [`FaultKind::LatencySpike`] | per-service work cost in `graf-sim` | measured latency (contention) |
//!
//! ## Determinism invariants
//!
//! * All randomness comes from [`graf_sim::rng::DetRng`] streams forked from
//!   the schedule's seed — a chaos-enabled run is bit-identical across
//!   executions with the same seed (`tests/chaos.rs`).
//! * An empty schedule injects nothing and draws nothing: arming chaos with
//!   no faults leaves a run bit-identical to one that never heard of this
//!   crate (`chaos off` ≡ baseline).
//! * Engine queries on the simulation hot path allocate nothing and never
//!   read the wall clock (enforced by `graf-lint`).
//!
//! ## Quickstart
//!
//! ```
//! use graf_chaos::{ChaosSchedule, FaultKind, stream};
//! use graf_sim::time::{SimDuration, SimTime};
//!
//! // A 60 s window of dropped trace spans plus a creation-failure window.
//! let schedule = ChaosSchedule::new(42)
//!     .fault(
//!         FaultKind::TraceDrop { drop_prob: 0.75 },
//!         SimTime::from_secs(90.0),
//!         SimTime::from_secs(150.0),
//!     )
//!     .fault(
//!         FaultKind::CreationFail { prob: 1.0 },
//!         SimTime::from_secs(120.0),
//!         SimTime::from_secs(210.0),
//!     );
//! assert!(schedule.overlaps(SimTime::from_secs(100.0), SimTime::from_secs(110.0)));
//!
//! // Consumers fork their own engine so draws never interleave.
//! let mut engine = schedule.engine(stream::CLUSTER);
//! assert!(engine.creation_fails(SimTime::from_secs(130.0)));
//! assert!(!engine.creation_fails(SimTime::from_secs(30.0)));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod catalog;
pub mod engine;
pub mod spec;

pub use catalog::{named_faults, CATALOG};
pub use engine::ChaosEngine;
pub use spec::{ChaosSchedule, FaultKind, FaultSpec};

/// Well-known [`graf_sim::rng::DetRng`] stream ids, one per consumer site, so
/// the simulator, the cluster and the controller never share a random stream.
pub mod stream {
    /// Stream for faults installed into the simulated world.
    pub const WORLD: u64 = 0xC4A0_0001;
    /// Stream for the cluster control plane (creation faults).
    pub const CLUSTER: u64 = 0xC4A0_0002;
    /// Stream for the resource controller's metric scrape.
    pub const CONTROLLER: u64 = 0xC4A0_0003;
    /// Stream for the sample collector's taint detection.
    pub const COLLECTOR: u64 = 0xC4A0_0004;
}
