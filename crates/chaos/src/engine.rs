//! The per-consumer fault engine.
//!
//! A [`ChaosEngine`] is forked from a [`crate::ChaosSchedule`] with a stream
//! id; each consumer (world, cluster, controller, collector) owns its own
//! engine so random draws never interleave between sites. All queries take
//! the current simulated time and are pure lookups except the probabilistic
//! ones, which draw from the engine's deterministic stream.

use graf_sim::rng::DetRng;
use graf_sim::time::{SimDuration, SimTime};

use crate::spec::{FaultKind, FaultSpec};

/// Answers "is fault X active, and did it strike?" at decision points.
#[derive(Clone, Debug)]
pub struct ChaosEngine {
    specs: Vec<FaultSpec>,
    rng: DetRng,
}

impl ChaosEngine {
    pub(crate) fn new(specs: Vec<FaultSpec>, seed: u64, stream: u64) -> Self {
        // `fork` derives the child purely from its stream argument, so the
        // schedule seed must be mixed in (the same convention the world's
        // rng streams use) — otherwise every seed would draw identically.
        Self { specs, rng: DetRng::new(seed).fork(seed ^ stream) }
    }

    /// Whether any fault window covers `now`.
    pub fn any_active(&self, now: SimTime) -> bool {
        self.specs.iter().any(|s| s.active_at(now))
    }

    /// Whether a [`FaultKind::MetricNan`] gap window is active.
    pub fn metric_nan(&self, now: SimTime) -> bool {
        self.specs.iter().any(|s| matches!(s.kind, FaultKind::MetricNan) && s.active_at(now))
    }

    /// The largest active [`FaultKind::MetricStale`] scrape delay, if any.
    pub fn metric_delay(&self, now: SimTime) -> Option<SimDuration> {
        self.specs
            .iter()
            .filter(|s| s.active_at(now))
            .filter_map(|s| match s.kind {
                FaultKind::MetricStale { delay } => Some(delay),
                _ => None,
            })
            .max_by_key(|d| d.as_micros())
    }

    /// When an active [`FaultKind::StaleModel`] window opened — the instant
    /// the served snapshot froze — if one is active.
    pub fn stale_model_since(&self, now: SimTime) -> Option<SimTime> {
        self.specs
            .iter()
            .filter(|s| matches!(s.kind, FaultKind::StaleModel) && s.active_at(now))
            .map(|s| s.from)
            .min_by_key(|t| t.as_micros())
    }

    /// Whether a creation batch started at `now` fails. Draws one chance per
    /// active [`FaultKind::CreationFail`] window, in schedule order, so runs
    /// stay bit-reproducible.
    pub fn creation_fails(&mut self, now: SimTime) -> bool {
        let mut failed = false;
        for i in 0..self.specs.len() {
            let s = &self.specs[i];
            if let FaultKind::CreationFail { prob } = s.kind {
                if s.active_at(now) && self.rng.chance(prob) {
                    failed = true;
                }
            }
        }
        failed
    }

    /// The combined [`FaultKind::SlowStart`] delay multiplier at `now`
    /// (product of active windows; `1.0` when none are active).
    pub fn slow_start_factor(&self, now: SimTime) -> f64 {
        self.specs
            .iter()
            .filter(|s| s.active_at(now))
            .filter_map(|s| match s.kind {
                FaultKind::SlowStart { factor } => Some(factor),
                _ => None,
            })
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChaosSchedule;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn queries_respect_windows() {
        let sched = ChaosSchedule::new(7)
            .fault(FaultKind::MetricNan, t(10.0), t(20.0))
            .fault(FaultKind::MetricStale { delay: SimDuration::from_secs(30.0) }, t(15.0), t(25.0))
            .fault(FaultKind::StaleModel, t(40.0), t(50.0))
            .fault(FaultKind::SlowStart { factor: 4.0 }, t(60.0), t(70.0));
        let e = sched.engine(1);
        assert!(e.metric_nan(t(12.0)));
        assert!(!e.metric_nan(t(22.0)));
        assert_eq!(e.metric_delay(t(16.0)), Some(SimDuration::from_secs(30.0)));
        assert_eq!(e.metric_delay(t(5.0)), None);
        assert_eq!(e.stale_model_since(t(45.0)), Some(t(40.0)));
        assert_eq!(e.stale_model_since(t(55.0)), None);
        assert_eq!(e.slow_start_factor(t(65.0)), 4.0);
        assert_eq!(e.slow_start_factor(t(5.0)), 1.0);
        assert!(e.any_active(t(12.0)));
        assert!(!e.any_active(t(100.0)));
    }

    #[test]
    fn creation_failures_are_deterministic_per_stream() {
        let sched =
            ChaosSchedule::new(11).fault(FaultKind::CreationFail { prob: 0.5 }, t(0.0), t(100.0));
        let draws = |stream: u64| -> Vec<bool> {
            let mut e = sched.engine(stream);
            (0..32).map(|i| e.creation_fails(t(i as f64))).collect()
        };
        assert_eq!(draws(2), draws(2), "same stream → same outcomes");
        assert_ne!(draws(2), draws(3), "different streams are independent");
        assert!(draws(2).iter().any(|&b| b) && draws(2).iter().any(|&b| !b));
        // A different schedule seed must change the draws on the same stream.
        let other =
            ChaosSchedule::new(12).fault(FaultKind::CreationFail { prob: 0.5 }, t(0.0), t(100.0));
        let mut e = other.engine(2);
        let other_draws: Vec<bool> = (0..32).map(|i| e.creation_fails(t(i as f64))).collect();
        assert_ne!(draws(2), other_draws, "seed feeds the fault stream");
    }

    #[test]
    fn certain_failure_always_fires_inside_window() {
        let sched =
            ChaosSchedule::new(3).fault(FaultKind::CreationFail { prob: 1.0 }, t(10.0), t(20.0));
        let mut e = sched.engine(1);
        assert!(!e.creation_fails(t(5.0)));
        assert!(e.creation_fails(t(15.0)));
        assert!(!e.creation_fails(t(25.0)));
    }
}
