//! The named fault catalog: one canonical parameterization per fault class.
//!
//! Experiment harnesses address faults by their stable names (the same names
//! [`FaultKind::name`] reports) so a fault class can be a CLI flag value or a
//! sweep-grid axis value. The parameterizations here are the chaos-matrix
//! severities: hard enough that a policy difference shows, survivable enough
//! that the ladder's graceful path stays measurable.

use graf_sim::time::SimDuration;
use graf_sim::topology::ServiceId;

use crate::spec::FaultKind;

/// Every catalog name, in table order. `"none"` is the explicit no-fault
/// cell — it exists so grids can sweep `chaos=none,trace_drop,...` and keep
/// the baseline in the same report.
pub const CATALOG: &[&str] = &[
    "none",
    "trace_drop",
    "metric_nan",
    "metric_stale",
    "stale_model",
    "creation_fail",
    "slow_start",
    "latency_spike",
];

/// Resolves a catalog name to its canonical fault set. `hot_service` is the
/// service a `latency_spike` lands on (harnesses point it at the hottest
/// service of the topology under test). Returns `None` for unknown names;
/// `"none"` resolves to an empty set.
pub fn named_faults(name: &str, hot_service: ServiceId) -> Option<Vec<FaultKind>> {
    let faults = match name {
        "none" => vec![],
        "trace_drop" => vec![FaultKind::TraceDrop { drop_prob: 0.75 }],
        "metric_nan" => vec![FaultKind::MetricNan],
        "metric_stale" => {
            vec![FaultKind::MetricStale { delay: SimDuration::from_secs(60.0) }]
        }
        "stale_model" => vec![FaultKind::StaleModel],
        "creation_fail" => vec![FaultKind::CreationFail { prob: 1.0 }],
        "slow_start" => vec![FaultKind::SlowStart { factor: 4.0 }],
        "latency_spike" => {
            vec![FaultKind::LatencySpike { service: hot_service, factor: 3.0 }]
        }
        _ => return None,
    };
    Some(faults)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_name_resolves() {
        for name in CATALOG {
            let faults = named_faults(name, ServiceId(2)).unwrap_or_else(|| {
                panic!("catalog name {name:?} does not resolve");
            });
            if *name == "none" {
                assert!(faults.is_empty());
            } else {
                assert_eq!(faults.len(), 1);
                assert_eq!(faults[0].name(), *name, "name round-trips through FaultKind::name");
            }
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(named_faults("bogus", ServiceId(0)).is_none());
    }

    #[test]
    fn latency_spike_targets_the_requested_service() {
        let faults = named_faults("latency_spike", ServiceId(5)).unwrap();
        assert!(matches!(faults[0], FaultKind::LatencySpike { service: ServiceId(5), .. }));
    }
}
