//! Fault specifications and schedules.
//!
//! A [`FaultSpec`] is one fault class active over one `[from, until)` window
//! of simulated time; a [`ChaosSchedule`] composes any number of them under a
//! single seed. Schedules are plain data — cheap to clone, comparable in
//! tests, and independent of any consumer.

use graf_sim::time::SimTime;
use graf_sim::topology::ServiceId;
use graf_sim::world::World;

use crate::engine::ChaosEngine;

/// One injectable fault class. See the crate-level fault catalog for where
/// each kind is consumed.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Trace spans are dropped with this probability while the window is
    /// active — finished traces arrive truncated (partial call graphs), the
    /// failure mode the workload analyzer must interpolate across.
    TraceDrop {
        /// Per-span drop probability in `(0, 1]`.
        drop_prob: f64,
    },
    /// The controller's metric scrape returns NaN for every per-API rate —
    /// a Prometheus gap window.
    MetricNan,
    /// The controller's metric scrape returns readings `delay` old — scrape
    /// lag / staleness.
    MetricStale {
        /// How far behind the scrape lags.
        delay: graf_sim::time::SimDuration,
    },
    /// Solver-input corruption: the controller keeps being served the
    /// snapshot taken when the window opened (a stale model input that stops
    /// tracking the live workload).
    StaleModel,
    /// Instance creation fails: a `set_desired` scale-up attempted inside
    /// the window loses its whole batch with this probability.
    CreationFail {
        /// Per-batch failure probability in `(0, 1]`.
        prob: f64,
    },
    /// Slow-start: the Figure-1 creation delay is multiplied by this factor
    /// for batches started inside the window.
    SlowStart {
        /// Delay multiplier, `> 1`.
        factor: f64,
    },
    /// A per-service latency/contention spike: requests at `service` cost
    /// `factor×` their normal CPU while the window is active (the §6
    /// noisy-neighbour anomaly).
    LatencySpike {
        /// Affected service.
        service: ServiceId,
        /// CPU-cost multiplier, `≥ 1`.
        factor: f64,
    },
}

impl FaultKind {
    /// Short stable name of the fault class, for tables and metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::TraceDrop { .. } => "trace_drop",
            FaultKind::MetricNan => "metric_nan",
            FaultKind::MetricStale { .. } => "metric_stale",
            FaultKind::StaleModel => "stale_model",
            FaultKind::CreationFail { .. } => "creation_fail",
            FaultKind::SlowStart { .. } => "slow_start",
            FaultKind::LatencySpike { .. } => "latency_spike",
        }
    }
}

/// One fault active over `[from, until)` of simulated time.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl FaultSpec {
    /// Creates a spec; panics unless `until > from` and the kind's parameters
    /// are in range.
    pub fn new(kind: FaultKind, from: SimTime, until: SimTime) -> Self {
        assert!(until > from, "fault window must be non-empty");
        match &kind {
            FaultKind::TraceDrop { drop_prob } => {
                assert!(*drop_prob > 0.0 && *drop_prob <= 1.0, "drop_prob in (0, 1]")
            }
            FaultKind::CreationFail { prob } => {
                assert!(*prob > 0.0 && *prob <= 1.0, "prob in (0, 1]")
            }
            FaultKind::SlowStart { factor } => assert!(*factor > 1.0, "slow-start factor > 1"),
            FaultKind::LatencySpike { factor, .. } => {
                assert!(*factor >= 1.0, "contention only slows work down")
            }
            FaultKind::MetricNan | FaultKind::MetricStale { .. } | FaultKind::StaleModel => {}
        }
        Self { kind, from, until }
    }

    /// Whether the window covers `now`. Windows are half-open: active at
    /// `from`, inactive again at `until`.
    ///
    /// ```
    /// use graf_chaos::{FaultKind, FaultSpec};
    /// use graf_sim::time::SimTime;
    /// let s = FaultSpec::new(FaultKind::MetricNan, SimTime::from_secs(10.0), SimTime::from_secs(20.0));
    /// assert!(s.active_at(SimTime::from_secs(10.0)));
    /// assert!(!s.active_at(SimTime::from_secs(20.0))); // half-open
    /// ```
    pub fn active_at(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }
}

/// A seeded, composable set of fault windows.
///
/// The schedule is the single source of truth for a chaos run: the same
/// schedule is installed into the world ([`ChaosSchedule::install_world`])
/// and handed to each consumer as an engine ([`ChaosSchedule::engine`]), so
/// one value describes the whole experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosSchedule {
    specs: Vec<FaultSpec>,
    seed: u64,
}

impl ChaosSchedule {
    /// Creates an empty schedule. Arming an empty schedule injects nothing
    /// and perturbs nothing — the `chaos off` ≡ baseline invariant.
    pub fn new(seed: u64) -> Self {
        Self { specs: Vec::new(), seed }
    }

    /// Adds a fault window (builder style). Panics on out-of-range
    /// parameters — see [`FaultSpec::new`].
    pub fn fault(mut self, kind: FaultKind, from: SimTime, until: SimTime) -> Self {
        self.specs.push(FaultSpec::new(kind, from, until));
        self
    }

    /// The schedule's seed — every engine forks its stream from it.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault windows, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Whether the schedule carries no faults.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Whether any fault window overlaps `[from, until)`.
    pub fn overlaps(&self, from: SimTime, until: SimTime) -> bool {
        self.specs.iter().any(|s| s.from < until && from < s.until)
    }

    /// Whether any fault window covers `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.specs.iter().any(|s| s.active_at(now))
    }

    /// Forks a consumer engine on its own deterministic stream (use the ids
    /// in [`crate::stream`] so sites never share draws).
    pub fn engine(&self, stream: u64) -> ChaosEngine {
        ChaosEngine::new(self.specs.clone(), self.seed, stream)
    }

    /// Installs the world-level faults into a simulated world: trace-span
    /// drops and per-service contention spikes. Metric, model and creation
    /// faults are consumed by the controller and the cluster instead.
    pub fn install_world(&self, world: &mut World) {
        for s in &self.specs {
            match s.kind {
                FaultKind::TraceDrop { drop_prob } => {
                    world.inject_span_drop(s.from, s.until, drop_prob);
                }
                FaultKind::LatencySpike { service, factor } if factor > 1.0 => {
                    world.inject_contention(service, factor, s.from, s.until);
                }
                _ => {}
            }
        }
    }

    /// Restricts the schedule to `[from, until)` and rebases the surviving
    /// windows so `from` becomes time zero — used by the sample collector,
    /// whose measurement runs each live in a fresh world.
    pub fn localized(&self, from: SimTime, until: SimTime) -> ChaosSchedule {
        let specs = self
            .specs
            .iter()
            .filter(|s| s.from < until && from < s.until)
            .map(|s| {
                let lo = s.from.as_micros().max(from.as_micros()) - from.as_micros();
                let hi = s.until.as_micros().min(until.as_micros()) - from.as_micros();
                FaultSpec {
                    kind: s.kind.clone(),
                    from: SimTime::from_micros(lo),
                    until: SimTime::from_micros(hi.max(lo + 1)),
                }
            })
            .collect();
        ChaosSchedule { specs, seed: self.seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn windows_are_half_open() {
        let s = FaultSpec::new(FaultKind::MetricNan, t(1.0), t(2.0));
        assert!(!s.active_at(SimTime::from_micros(999_999)));
        assert!(s.active_at(t(1.0)));
        assert!(!s.active_at(t(2.0)));
    }

    #[test]
    fn overlap_detection() {
        let sched = ChaosSchedule::new(1).fault(FaultKind::MetricNan, t(10.0), t(20.0));
        assert!(sched.overlaps(t(15.0), t(25.0)));
        assert!(sched.overlaps(t(5.0), t(11.0)));
        assert!(!sched.overlaps(t(20.0), t(30.0)), "half-open: end touches start");
        assert!(!sched.overlaps(t(0.0), t(10.0)));
    }

    #[test]
    fn localized_rebases_windows() {
        let sched = ChaosSchedule::new(1).fault(FaultKind::MetricNan, t(10.0), t(20.0));
        let local = sched.localized(t(15.0), t(30.0));
        assert_eq!(local.specs().len(), 1);
        assert_eq!(local.specs()[0].from, t(0.0));
        assert_eq!(local.specs()[0].until, t(5.0));
        assert!(sched.localized(t(40.0), t(50.0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn rejects_out_of_range_probability() {
        let _ = FaultSpec::new(FaultKind::TraceDrop { drop_prob: 1.5 }, t(0.0), t(1.0));
    }
}
