//! Property-based tests for the simulator's core invariants.

use graf_sim::events::{CalendarQueue, EventQueue};
use graf_sim::frame::FrameId;
use graf_sim::station::{Instance, InstanceState};
use graf_sim::time::SimTime;
use graf_sim::topology::{ApiId, ApiSpec, AppTopology, CallNode, ServiceId, ServiceSpec};
use graf_sim::world::{SimConfig, World};
use proptest::prelude::*;

proptest! {
    /// The event queue pops events in non-decreasing time order regardless of
    /// schedule order, with ties resolved by insertion sequence.
    #[test]
    fn event_queue_orders_any_schedule(times in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut last_time = 0u64;
        let mut last_seq_at_time = None::<usize>;
        let mut popped = 0;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t.0 >= last_time);
            if t.0 == last_time {
                if let Some(prev) = last_seq_at_time {
                    // Ties pop in insertion order only among equal times.
                    if times[prev] == times[idx] {
                        prop_assert!(idx > prev);
                    }
                }
            }
            last_time = t.0;
            last_seq_at_time = Some(idx);
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Processor sharing conserves work: usage reported by advance() equals
    /// the backlog reduction, for arbitrary job sets and time steps.
    #[test]
    fn station_conserves_work(
        quota in 50.0f64..4000.0,
        jobs in proptest::collection::vec(10.0f64..1e6, 1..20),
        steps in proptest::collection::vec(1u64..100_000, 1..20),
    ) {
        let mut inst = Instance::new(ServiceId(0), quota, InstanceState::Ready, 1000.0, SimTime::ZERO);
        for (i, &w) in jobs.iter().enumerate() {
            inst.push_job(FrameId(i as u32), w);
        }
        let before = inst.backlog_mc_us();
        let mut now = 0u64;
        let mut used_total = 0.0;
        for &dt in &steps {
            now += dt;
            used_total += inst.advance(SimTime(now));
            let _ = inst.take_finished();
        }
        let after = inst.backlog_mc_us();
        prop_assert!(
            (before - after - used_total).abs() < 1e-6 * (1.0 + before),
            "work conservation: before {before}, after {after}, used {used_total}"
        );
        // Usage can never exceed capacity × elapsed (modulo per-job caps).
        prop_assert!(used_total <= quota * now as f64 + 1e-6);
    }

    /// End-to-end: every injected request either completes or is still in
    /// flight — nothing is lost — and completions have sane timestamps.
    #[test]
    fn world_conserves_requests(
        n_requests in 1usize..120,
        quota in 100.0f64..2000.0,
        gap_us in 500u64..50_000,
        seed in 0u64..1000,
    ) {
        let topo = AppTopology::new(
            "prop",
            vec![ServiceSpec::new("a", 0.5, 200), ServiceSpec::new("b", 1.0, 200)],
            vec![ApiSpec::new("get", CallNode::new(0).call(CallNode::new(1)))],
        );
        let mut w = World::new(topo, SimConfig::default(), seed);
        w.add_instances(ServiceId(0), 1, quota, SimTime::ZERO);
        w.add_instances(ServiceId(1), 1, quota, SimTime::ZERO);
        for i in 0..n_requests {
            w.inject(ApiId(0), SimTime(i as u64 * gap_us));
        }
        w.run_until(SimTime::from_secs(120.0));
        let done = w.drain_completions();
        prop_assert_eq!(done.len() + w.in_flight(), n_requests);
        for c in &done {
            prop_assert!(c.end >= c.start);
            prop_assert!(c.latency_us() > 0);
            // The 30 s client timeout bounds every reported latency.
            prop_assert!(c.latency_us() <= 30_000_000);
        }
    }

    /// Differential: for any interleaving of schedules and pops — offsets
    /// spanning every wheel level, same-timestamp ties, zero-delay events and
    /// far-overflow horizons — the calendar queue pops exactly what the
    /// reference `BinaryHeap` queue pops, in the same order.
    #[test]
    fn calendar_queue_matches_reference_heap(
        ops in proptest::collection::vec((0u8..5, 0u64..u64::MAX), 1..400),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        let mut now = 0u64;
        let mut queued = 0usize;
        for (i, &(kind, x)) in ops.iter().enumerate() {
            match kind {
                // Schedule at now + an offset chosen to exercise one level:
                // ties (0), L0 (<64 µs), L1 (<~65 ms), L2 (<~67 s), overflow.
                0..=3 => {
                    let spread = match kind {
                        0 => x % 2,             // tie or 1 µs
                        1 => x % (1 << 6),      // within L0
                        2 => x % 60_000,        // within L1
                        _ => x % (1 << 38),     // L2 and the overflow list
                    };
                    cal.schedule(SimTime(now + spread), i);
                    heap.schedule(SimTime(now + spread), i);
                    queued += 1;
                }
                _ if x % 3 == 0 && queued > 0 => {
                    // Far horizon: drain everything (crosses overflow paths).
                    let a = cal.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b, "pop diverged at op {}", i);
                    let Some((t, _)) = a else { unreachable!() };
                    now = now.max(t.0);
                    queued -= 1;
                }
                _ => {
                    // Bounded pop: may return None, advancing the cursor.
                    let horizon = now + x % 70_000_000;
                    let a = cal.pop_due(SimTime(horizon));
                    let b = heap.pop_due(SimTime(horizon));
                    prop_assert_eq!(a, b, "pop_due diverged at op {}", i);
                    match a {
                        Some((t, _)) => { now = now.max(t.0); queued -= 1; }
                        None => now = now.max(horizon),
                    }
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.peek_time(), heap.peek_time(), "peek diverged at op {}", i);
        }
        // Drain the tail: order must match to the last event.
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b, "tail drain diverged");
            if a.is_none() { break; }
        }
    }

    /// Latency is monotone in quota on average: doubling every quota never
    /// increases the mean latency materially (allowing small stochastic
    /// wiggle when both systems are unloaded).
    #[test]
    fn more_quota_never_materially_slower(
        base_quota in 120.0f64..600.0,
        rate_gap_us in 2_000u64..20_000,
        seed in 0u64..200,
    ) {
        fn mean_latency(quota: f64, gap: u64, seed: u64) -> f64 {
            let topo = AppTopology::new(
                "prop",
                vec![ServiceSpec::new("s", 1.0, 100)],
                vec![ApiSpec::new("get", CallNode::new(0))],
            );
            let mut w = World::new(topo, SimConfig::default(), seed);
            w.add_instances(ServiceId(0), 1, quota, SimTime::ZERO);
            for i in 0..200u64 {
                w.inject(ApiId(0), SimTime(i * gap));
            }
            w.run_until(SimTime::from_secs(120.0));
            let done = w.drain_completions();
            done.iter().map(|c| c.latency_us() as f64).sum::<f64>() / done.len().max(1) as f64
        }
        let slow = mean_latency(base_quota, rate_gap_us, seed);
        let fast = mean_latency(base_quota * 2.0, rate_gap_us, seed);
        prop_assert!(
            fast <= slow * 1.05 + 50.0,
            "doubling quota can't hurt: {slow} → {fast} (quota {base_quota}, gap {rate_gap_us})"
        );
    }
}
