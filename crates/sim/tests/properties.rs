//! Property-based tests for the simulator's core invariants.

use graf_sim::events::{CalendarQueue, EventQueue};
use graf_sim::frame::FrameId;
use graf_sim::station::{Instance, InstanceState};
use graf_sim::time::SimTime;
use graf_sim::topology::{ApiId, ApiSpec, AppTopology, CallNode, ServiceId, ServiceSpec};
use graf_sim::world::{SimConfig, World};
use proptest::prelude::*;

proptest! {
    /// The event queue pops events in non-decreasing time order regardless of
    /// schedule order, with ties resolved by insertion sequence.
    #[test]
    fn event_queue_orders_any_schedule(times in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut last_time = 0u64;
        let mut last_seq_at_time = None::<usize>;
        let mut popped = 0;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t.0 >= last_time);
            if t.0 == last_time {
                if let Some(prev) = last_seq_at_time {
                    // Ties pop in insertion order only among equal times.
                    if times[prev] == times[idx] {
                        prop_assert!(idx > prev);
                    }
                }
            }
            last_time = t.0;
            last_seq_at_time = Some(idx);
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Processor sharing conserves work: usage reported by advance() equals
    /// the backlog reduction, for arbitrary job sets and time steps.
    #[test]
    fn station_conserves_work(
        quota in 50.0f64..4000.0,
        jobs in proptest::collection::vec(10.0f64..1e6, 1..20),
        steps in proptest::collection::vec(1u64..100_000, 1..20),
    ) {
        let mut inst = Instance::new(ServiceId(0), quota, InstanceState::Ready, 1000.0, SimTime::ZERO);
        for (i, &w) in jobs.iter().enumerate() {
            inst.push_job(FrameId(i as u32), w);
        }
        let before = inst.backlog_mc_us();
        let mut now = 0u64;
        let mut used_total = 0.0;
        for &dt in &steps {
            now += dt;
            used_total += inst.advance(SimTime(now));
            let _ = inst.take_finished();
        }
        let after = inst.backlog_mc_us();
        prop_assert!(
            (before - after - used_total).abs() < 1e-6 * (1.0 + before),
            "work conservation: before {before}, after {after}, used {used_total}"
        );
        // Usage can never exceed capacity × elapsed (modulo per-job caps).
        prop_assert!(used_total <= quota * now as f64 + 1e-6);
    }

    /// End-to-end: every injected request either completes or is still in
    /// flight — nothing is lost — and completions have sane timestamps.
    #[test]
    fn world_conserves_requests(
        n_requests in 1usize..120,
        quota in 100.0f64..2000.0,
        gap_us in 500u64..50_000,
        seed in 0u64..1000,
    ) {
        let topo = AppTopology::new(
            "prop",
            vec![ServiceSpec::new("a", 0.5, 200), ServiceSpec::new("b", 1.0, 200)],
            vec![ApiSpec::new("get", CallNode::new(0).call(CallNode::new(1)))],
        );
        let mut w = World::new(topo, SimConfig::default(), seed);
        w.add_instances(ServiceId(0), 1, quota, SimTime::ZERO);
        w.add_instances(ServiceId(1), 1, quota, SimTime::ZERO);
        for i in 0..n_requests {
            w.inject(ApiId(0), SimTime(i as u64 * gap_us));
        }
        w.run_until(SimTime::from_secs(120.0));
        let done = w.drain_completions();
        prop_assert_eq!(done.len() + w.in_flight(), n_requests);
        for c in &done {
            prop_assert!(c.end >= c.start);
            prop_assert!(c.latency_us() > 0);
            // The 30 s client timeout bounds every reported latency.
            prop_assert!(c.latency_us() <= 30_000_000);
        }
    }

    /// Differential: for any interleaving of schedules and pops — offsets
    /// spanning every wheel level, same-timestamp ties, zero-delay events and
    /// far-overflow horizons — the calendar queue pops exactly what the
    /// reference `BinaryHeap` queue pops, in the same order.
    #[test]
    fn calendar_queue_matches_reference_heap(
        ops in proptest::collection::vec((0u8..5, 0u64..u64::MAX), 1..400),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        let mut now = 0u64;
        let mut queued = 0usize;
        for (i, &(kind, x)) in ops.iter().enumerate() {
            match kind {
                // Schedule at now + an offset chosen to exercise one level:
                // ties (0), L0 (<64 µs), L1 (<~65 ms), L2 (<~67 s), overflow.
                0..=3 => {
                    let spread = match kind {
                        0 => x % 2,             // tie or 1 µs
                        1 => x % (1 << 6),      // within L0
                        2 => x % 60_000,        // within L1
                        _ => x % (1 << 38),     // L2 and the overflow list
                    };
                    cal.schedule(SimTime(now + spread), i);
                    heap.schedule(SimTime(now + spread), i);
                    queued += 1;
                }
                _ if x % 3 == 0 && queued > 0 => {
                    // Far horizon: drain everything (crosses overflow paths).
                    let a = cal.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b, "pop diverged at op {}", i);
                    let Some((t, _)) = a else { unreachable!() };
                    now = now.max(t.0);
                    queued -= 1;
                }
                _ => {
                    // Bounded pop: may return None, advancing the cursor.
                    let horizon = now + x % 70_000_000;
                    let a = cal.pop_due(SimTime(horizon));
                    let b = heap.pop_due(SimTime(horizon));
                    prop_assert_eq!(a, b, "pop_due diverged at op {}", i);
                    match a {
                        Some((t, _)) => { now = now.max(t.0); queued -= 1; }
                        None => now = now.max(horizon),
                    }
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.peek_time(), heap.peek_time(), "peek diverged at op {}", i);
        }
        // Drain the tail: order must match to the last event.
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b, "tail drain diverged");
            if a.is_none() { break; }
        }
    }

    /// Latency is monotone in quota on average: doubling every quota never
    /// increases the mean latency materially (allowing small stochastic
    /// wiggle when both systems are unloaded).
    #[test]
    fn more_quota_never_materially_slower(
        base_quota in 120.0f64..600.0,
        rate_gap_us in 2_000u64..20_000,
        seed in 0u64..200,
    ) {
        fn mean_latency(quota: f64, gap: u64, seed: u64) -> f64 {
            let topo = AppTopology::new(
                "prop",
                vec![ServiceSpec::new("s", 1.0, 100)],
                vec![ApiSpec::new("get", CallNode::new(0))],
            );
            let mut w = World::new(topo, SimConfig::default(), seed);
            w.add_instances(ServiceId(0), 1, quota, SimTime::ZERO);
            for i in 0..200u64 {
                w.inject(ApiId(0), SimTime(i * gap));
            }
            w.run_until(SimTime::from_secs(120.0));
            let done = w.drain_completions();
            done.iter().map(|c| c.latency_us() as f64).sum::<f64>() / done.len().max(1) as f64
        }
        let slow = mean_latency(base_quota, rate_gap_us, seed);
        let fast = mean_latency(base_quota * 2.0, rate_gap_us, seed);
        prop_assert!(
            fast <= slow * 1.05 + 50.0,
            "doubling quota can't hurt: {slow} → {fast} (quota {base_quota}, gap {rate_gap_us})"
        );
    }
}

// ---------------------------------------------------------------------------
// Deterministic calendar-queue boundary regressions. The proptest above
// sweeps the space statistically; these pin the exact edges where the wheel
// switches representation — level-width boundaries and the far-bucket
// capacity floor — bit-identically against the reference heap, so a slot
// arithmetic off-by-one cannot hide behind sampling luck.
// ---------------------------------------------------------------------------

use graf_sim::events::{Queue, QueueKind};

/// Runs the same schedule/pop script against both queue kinds and asserts
/// every pop and peek matches bit-for-bit.
fn assert_kinds_agree(script: &[(u64, &str)]) {
    let mut cal: Queue<usize> = Queue::new(QueueKind::Calendar);
    let mut heap: Queue<usize> = Queue::new(QueueKind::Heap);
    for (i, &(x, op)) in script.iter().enumerate() {
        match op {
            "sched" => {
                cal.schedule(SimTime(x), i);
                heap.schedule(SimTime(x), i);
            }
            "pop_due" => {
                assert_eq!(
                    cal.pop_due(SimTime(x)),
                    heap.pop_due(SimTime(x)),
                    "pop_due({x}) diverged at step {i}"
                );
            }
            "pop" => assert_eq!(cal.pop(), heap.pop(), "pop diverged at step {i}"),
            other => panic!("unknown op {other}"),
        }
        assert_eq!(cal.peek_time(), heap.peek_time(), "peek diverged at step {i}");
        assert_eq!(cal.len(), heap.len(), "len diverged at step {i}");
    }
    loop {
        let (a, b) = (cal.pop(), heap.pop());
        assert_eq!(a, b, "tail drain diverged");
        if a.is_none() {
            break;
        }
    }
}

/// Events exactly at, one below, and one above every wheel level's span
/// (2^16 µs, 2^26 µs, 2^36 µs — SLOT_BITS + SHIFTS[level]) pop in reference
/// order, both from a zero cursor and from a cursor parked at an odd time
/// (so the level-base alignment `cur & !(span - 1)` is exercised off-origin).
#[test]
fn calendar_queue_level_width_boundaries_match_heap() {
    let spans: [u64; 3] = [1 << 16, 1 << 26, 1 << 36];
    for &span in &spans {
        for &cursor in &[0u64, 12_345, span - 1] {
            let mut script: Vec<(u64, &str)> = Vec::new();
            if cursor > 0 {
                // Park both cursors without popping anything.
                script.push((cursor, "pop_due"));
            }
            // Same-slot tie, slot edge, span edge, exact span, one past, and
            // a deep overshoot that must fall through to the next level.
            for off in [0, 1, span - 1, span, span + 1, 2 * span + 3] {
                script.push((cursor + off, "sched"));
            }
            // Interleave: drain two, schedule another boundary batch, drain all.
            script.push((0, "pop"));
            script.push((cursor + span, "pop_due"));
            for off in [span - 1, span, span + 1] {
                script.push((cursor + span + off, "sched"));
            }
            assert_kinds_agree(&script);
        }
    }
}

/// Slot-width boundaries (2^6, 2^16, 2^26 µs — SHIFTS) where an event moves
/// from one bucket to the next within a level.
#[test]
fn calendar_queue_slot_width_boundaries_match_heap() {
    let mut script: Vec<(u64, &str)> = Vec::new();
    for shift in [6u32, 16, 26] {
        let w = 1u64 << shift;
        for off in [w - 1, w, w + 1] {
            script.push((off, "sched"));
        }
    }
    script.push((1 << 6, "pop_due"));
    script.push((1 << 16, "pop_due"));
    assert_kinds_agree(&script);
}

/// The far-bucket capacity floor (FAR_BUCKET_MIN = 64): filling a single
/// far-level bucket to one below, exactly at, and past the reserve floor
/// never reorders pops — the floor is an allocation hint, not a limit.
#[test]
fn calendar_queue_far_bucket_floor_is_not_a_capacity_limit() {
    for n in [63usize, 64, 65, 130] {
        let far = (1u64 << 16) + 7; // lands in level 1, same bucket each time
        let mut script: Vec<(u64, &str)> = Vec::new();
        for _ in 0..n {
            script.push((far, "sched"));
        }
        // Drain half bounded, then let the tail drain in assert_kinds_agree.
        for _ in 0..n / 2 {
            script.push((far, "pop_due"));
        }
        assert_kinds_agree(&script);
    }
}

// ---------------------------------------------------------------------------
// Sharded-executor differential: the serial world with the same nonzero
// return delay is the exact reference for the sharded executor (the same
// role the heap queue plays for the calendar queue). cv = 0 makes service
// times deterministic, so the two executions must agree on every request's
// (start, end) — not just statistically.
// ---------------------------------------------------------------------------

use graf_sim::exec::ShardedWorld;

proptest! {
    /// Program generator: random small topologies (every service attaches
    /// under a random earlier parent), random loads, random return delays
    /// and random worker counts. The sharded run's completion multiset must
    /// equal the serial run's bit-for-bit, and both must conserve requests.
    #[test]
    fn sharded_execution_matches_serial_reference(
        works in proptest::collection::vec(0.2f64..2.0, 2..5),
        parents in proptest::collection::vec(0usize..64, 4..5),
        bases in proptest::collection::vec(250u64..800, 5..6),
        return_us in 100u64..400,
        quota in 400.0f64..2000.0,
        n_requests in 1usize..30,
        gap_us in 200u64..5_000,
        seed in 0u64..1000,
        threads in 1usize..4,
    ) {
        let n = works.len();
        let services: Vec<ServiceSpec> = works
            .iter()
            .enumerate()
            .map(|(i, &w)| ServiceSpec::new(&format!("s{i}"), w, bases[i]).cv(0.0))
            .collect();
        // children[p] lists the services calling into p's subtree; service i
        // attaches under a random earlier service, so any tree shape with
        // root 0 can be drawn.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 1..n {
            children[parents[i - 1] % i].push(i);
        }
        fn build(svc: usize, children: &[Vec<usize>]) -> CallNode {
            let mut node = CallNode::new(svc as u16);
            for &c in &children[svc] {
                node = node.call(build(c, children));
            }
            node
        }
        let topo = AppTopology::new(
            "prop-sharded",
            services,
            vec![ApiSpec::new("get", build(0, &children))],
        );
        let cfg = SimConfig {
            request_timeout_us: None,
            return_us,
            ..SimConfig::default()
        };

        let mut serial = World::new(topo.clone(), cfg.clone(), seed);
        let mut sharded = ShardedWorld::new(topo, cfg, seed, threads);
        for s in 0..n as u16 {
            serial.add_instances(ServiceId(s), 1, quota, SimTime::ZERO);
            sharded.add_instances(ServiceId(s), 1, quota, SimTime::ZERO);
        }
        for i in 0..n_requests {
            serial.inject(ApiId(0), SimTime(i as u64 * gap_us));
            sharded.inject(ApiId(0), SimTime(i as u64 * gap_us));
        }
        let horizon = SimTime::from_secs(60.0);
        serial.run_to_quiescence(horizon);
        sharded.run_until(SimTime(n_requests as u64 * gap_us));
        sharded.run_to_quiescence(horizon);

        let mut a: Vec<(u64, u64, bool)> =
            serial.drain_completions().iter().map(|c| (c.start.0, c.end.0, c.timed_out)).collect();
        let mut b: Vec<(u64, u64, bool)> =
            sharded.drain_completions().iter().map(|c| (c.start.0, c.end.0, c.timed_out)).collect();
        prop_assert_eq!(a.len(), n_requests, "serial conserves requests");
        prop_assert_eq!(b.len(), n_requests, "sharded conserves requests");
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "sharded completions diverged from the serial reference");
        prop_assert_eq!(
            serial.stats().spans,
            sharded.stats().spans,
            "every hop's span is recorded on exactly one shard"
        );
        prop_assert_eq!(sharded.in_flight(), 0, "proxies all drained");
    }
}
