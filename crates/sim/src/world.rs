//! The simulation world: event loop, request routing, instance lifecycle and
//! observability surfaces.
//!
//! [`World`] is the single mutable object an experiment drives. Higher layers
//! (the orchestrator's autoscalers, GRAF's controller, the load generators)
//! interleave with it through a simple contract:
//!
//! 1. schedule request arrivals with [`World::inject`],
//! 2. advance simulated time with [`World::run_until`],
//! 3. between advances, observe metrics/traces and mutate capacity with
//!    [`World::add_instances`] / [`World::remove_instances`].
//!
//! Determinism: all events are processed in `(time, schedule-order)` order and
//! all randomness derives from the seed passed to [`World::new`].

use graf_metrics::{RateCounter, WindowedLatency};
use graf_trace::{OpenTrace, Span, SpanId, TraceId, TraceStore};

use crate::events::{Queue, QueueKind};
use crate::frame::{Frame, FrameId, FrameState, RequestId};
use crate::loadidx;
use crate::rng::DetRng;
use crate::service::ServiceRuntime;
use crate::shard::{RemoteOrigin, ShardCtx, ShardMsg, REMOTE_FRAGMENT_API};
use crate::station::{Instance, InstanceId, InstanceState};
use crate::time::{SimDuration, SimTime};
use crate::topology::{ApiId, AppTopology, CallNode, ServiceId};

/// Tuning knobs of the simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Metric window width in µs (latency windows, arrival-rate windows).
    pub window_us: u64,
    /// Number of metric windows retained per surface.
    pub retain_windows: usize,
    /// Per-job CPU rate cap in millicores (one core by default): a single
    /// request handler cannot use more than one core no matter the quota.
    pub per_job_cap_mc: f64,
    /// Probability that a request is traced (Jaeger sampling rate).
    pub trace_sample: f64,
    /// Maximum finished traces retained.
    pub trace_capacity: usize,
    /// Client-side request timeout in µs (`None` = never). Mirrors Vegeta's
    /// 30 s default: a timed-out request is abandoned — its in-flight work is
    /// cancelled and its completion records the capped latency.
    pub request_timeout_us: Option<u64>,
    /// Event-queue implementation. [`QueueKind::Calendar`] (default) is the
    /// fast hierarchical calendar queue; [`QueueKind::Heap`] keeps the
    /// reference `BinaryHeap` for differential testing. Both produce
    /// bit-identical simulations.
    pub event_queue: QueueKind,
    /// CPU-usage checkpoint resolution in µs: usage samples landing in the
    /// same `t / cpu_checkpoint_us` cell collapse into one stored checkpoint.
    /// `1` (default) keeps one checkpoint per distinct microsecond — exact
    /// for any query. Coarser values bound the cAdvisor account's memory at
    /// high event rates; integrals between checkpoints stay exact because the
    /// cumulative value is carried, only intra-cell query resolution drops.
    pub cpu_checkpoint_us: u64,
    /// Child-completion return delay in µs: how long a child's response
    /// takes to travel back to its parent. `0` (default) keeps the original
    /// zero-delay semantics — a child's completion resumes its parent at the
    /// same instant, bit-identically to every pre-existing serial run.
    /// Sharded execution ([`crate::exec::ShardedWorld`]) requires `>= 1`,
    /// because subtree completions crossing a shard boundary need a nonzero
    /// delay to participate in the conservative lookahead window; a serial
    /// world with the same `return_us` is the differential reference for a
    /// sharded one (see DESIGN.md §14).
    pub return_us: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            window_us: 1_000_000, // 1 s windows; controllers query trailing k
            retain_windows: 600,
            per_job_cap_mc: 1000.0,
            trace_sample: 1.0,
            trace_capacity: 200_000,
            request_timeout_us: Some(30_000_000),
            event_queue: QueueKind::Calendar,
            cpu_checkpoint_us: 1,
            return_us: 0,
        }
    }
}

/// A finished end-to-end request.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// Request id (doubles as trace id).
    pub request: RequestId,
    /// API invoked.
    pub api: ApiId,
    /// Injection time (front-end receive).
    pub start: SimTime,
    /// Response time (capped at the timeout for abandoned requests).
    pub end: SimTime,
    /// `true` when the client abandoned the request at the timeout.
    pub timed_out: bool,
}

impl Completion {
    /// End-to-end latency in microseconds.
    pub fn latency_us(&self) -> u64 {
        (self.end - self.start).as_micros()
    }
}

/// Aggregate counters, mostly for tests and sanity checks.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorldStats {
    /// Requests injected so far.
    pub injected: u64,
    /// Requests completed so far.
    pub completed: u64,
    /// Spans recorded into the trace store.
    pub spans: u64,
    /// Spans suppressed by an injected trace fault ([`World::inject_span_drop`]).
    pub spans_dropped: u64,
    /// Requests abandoned at the client timeout.
    pub timeouts: u64,
    /// Events processed.
    pub events: u64,
}

/// Flattened call-tree node of one API (index-linked for cheap runtime walks).
#[derive(Clone, Debug)]
struct PlanNode {
    service: ServiceId,
    work_scale: f64,
    repeat: u32,
    /// Child stages: executed in order; calls within a stage run in parallel.
    stages: Vec<Vec<u16>>,
    /// Cached `(spec.work_ms · 1e6 · work_scale).max(1e-6)` — the lognormal
    /// mean under no contention, precomputed so the per-assignment sampling
    /// path skips two `ln` calls (see [`World::assign_job`]).
    work_mean_mc_us: f64,
    /// Cached `ln(work_mean_mc_us) − σ²/2` for the same fast path. Bitwise
    /// identical to computing it per call: the inputs never change.
    work_mu: f64,
    /// Frames one execution of this node creates (itself + all repeated
    /// descendants). Span ids are *structural*: a node's subtree occupies a
    /// contiguous id range of this size, so a child's span id is computable
    /// from its parent's without any per-request counter — which lets a
    /// remote shard continue the numbering of a subtree it never allocated.
    subtree_frames: u32,
    /// Span-id offset of each `stages[s][c]` child's first repetition,
    /// relative to this node's own span id. Repetition `r` of that child
    /// starts at `offset + r × subtree_frames(child)`.
    child_offsets: Vec<Vec<u32>>,
}

#[derive(Clone, Debug)]
struct ApiPlan {
    nodes: Vec<PlanNode>,
    root: u16,
    /// Total frames (= spans when fully sampled) one request of this API
    /// creates — fixed by the call tree's fan-outs and repeats. Used to
    /// right-size trace span buffers in one reservation.
    span_budget: u32,
}

fn flatten(tree: &CallNode) -> ApiPlan {
    fn walk(node: &CallNode, nodes: &mut Vec<PlanNode>) -> u16 {
        let idx = nodes.len() as u16;
        nodes.push(PlanNode {
            service: node.service,
            work_scale: node.work_scale,
            repeat: node.repeat,
            stages: Vec::new(),
            work_mean_mc_us: 0.0,
            work_mu: 0.0,
            subtree_frames: 0,
            child_offsets: Vec::new(),
        });
        let mut stages = Vec::with_capacity(node.stages.len());
        for stage in &node.stages {
            let mut s = Vec::with_capacity(stage.len());
            for c in stage {
                s.push(walk(c, nodes));
            }
            stages.push(s);
        }
        nodes[idx as usize].stages = stages;
        idx
    }
    // Structural span numbering: each node's subtree occupies a contiguous
    // id range in DFS-preorder, so every frame's span id is its parent's id
    // plus a precomputed offset (repetitions shift by whole subtree sizes).
    // Fills `subtree_frames`/`child_offsets`; returns the subtree size.
    fn number(nodes: &mut Vec<PlanNode>, idx: u16) -> u32 {
        let stages = nodes[idx as usize].stages.clone();
        let mut running = 1u32; // offset 0 is the node itself
        let mut offsets = Vec::with_capacity(stages.len());
        for stage in &stages {
            let mut per_call = Vec::with_capacity(stage.len());
            for &c in stage {
                per_call.push(running);
                let sub = number(nodes, c);
                running += nodes[c as usize].repeat * sub;
            }
            offsets.push(per_call);
        }
        nodes[idx as usize].subtree_frames = running;
        nodes[idx as usize].child_offsets = offsets;
        running
    }
    let mut nodes = Vec::new();
    let root = walk(tree, &mut nodes);
    let span_budget = number(&mut nodes, root);
    ApiPlan { nodes, root, span_budget }
}

/// Sentinel marking a free slot in the request slab. Real request ids are
/// assigned from a monotone counter starting at 0 and are never reused, so
/// they can never collide with the sentinel.
const FREE_REQUEST: RequestId = RequestId(u64::MAX);

/// Per-request bookkeeping while the request is in flight. Slots live in a
/// slab (`World::requests` + free-list) so the steady-state request path
/// allocates nothing: freed slots — including their `frames` buffers — are
/// reused for later requests.
#[derive(Debug)]
struct RequestSlot {
    /// Owning request, [`FREE_REQUEST`] while the slot is on the free-list.
    /// Events referencing a slot carry the id and compare against this to
    /// detect staleness after reuse.
    request: RequestId,
    api: ApiId,
    start: SimTime,
    sampled: bool,
    /// Trace id all spans of this slot join: the *root* request's id. Equals
    /// `request.0` for a root slot; a remote-subtree proxy slot carries the
    /// originating request's id so its span fragment merges into the same
    /// trace.
    trace_id: u64,
    /// Trace-store slab handle while `sampled` (dead once the request ends).
    trace: OpenTrace,
    /// `Some` when this slot is a remote-subtree proxy: where to send the
    /// completion. Proxy slots emit no [`Completion`] and count in no
    /// request statistics — the root's shard owns those.
    origin: Option<RemoteOrigin>,
    /// Live frames of this request: `(frame, generation)`.
    frames: Vec<(FrameId, u32)>,
}

#[derive(Debug)]
enum Event {
    Arrival {
        api: ApiId,
    },
    /// Carries the slab slot so the handler needs no map lookup; `request`
    /// doubles as the staleness check (slot freed or reused → ignore).
    RequestTimeout {
        request: RequestId,
        slot: u32,
    },
    StartFrame {
        frame: FrameId,
        generation: u32,
    },
    JobCheck {
        instance: InstanceId,
        epoch: u64,
    },
    InstanceReady {
        instance: InstanceId,
    },
    /// A child's response reached its parent (`return_us > 0` only): count
    /// down the parent's outstanding children. Guarded by generation *and*
    /// state so a return racing a timeout teardown is dropped.
    ChildReturn {
        frame: FrameId,
        generation: u32,
    },
    /// A cross-shard call arrived (shard mode only). Carries a slot of the
    /// shard context's payload slab, not the payload itself, so this enum —
    /// copied into every calendar bucket — stays small for the serial path.
    RemoteStart {
        slot: u32,
    },
}

/// The simulated cluster: application, replicas, in-flight requests, metrics.
pub struct World {
    cfg: SimConfig,
    topo: AppTopology,
    plans: Vec<ApiPlan>,
    /// Per-service `√ln(1 + cv²)` — the lognormal σ of the work
    /// distribution, paired with the cached per-node mean/µ so the
    /// no-contention sampling path avoids recomputing logarithms per job.
    work_sigma: Vec<f64>,
    services: Vec<ServiceRuntime>,
    instances: Vec<Option<Instance>>,
    /// Slot of each instance in its service's [`loadidx::MinLoadTree`]
    /// (parallel to `instances`; `u32::MAX` after deletion).
    load_slots: Vec<u32>,
    frames: Vec<Frame>,
    free_frames: Vec<u32>,
    /// Request slab: iteration order is never relied on (only direct slot
    /// indexing), so the slab replaces the former ordered map.
    requests: Vec<RequestSlot>,
    free_requests: Vec<u32>,
    live_requests: usize,
    queue: Queue<Event>,
    /// Scratch for `Instance::take_finished_into` (reused across events).
    scratch_finished: Vec<FrameId>,
    /// Scratch instance-id list for `resize_instances`/`remove_instances`.
    scratch_ids: Vec<InstanceId>,
    now: SimTime,
    rng_work: DetRng,
    rng_trace: DetRng,
    /// Trace-fault windows `(from_us, until_us, drop_prob)` — spans completed
    /// inside a window are dropped with the given probability.
    span_faults: Vec<(u64, u64, f64)>,
    traces: TraceStore,
    completions: Vec<Completion>,
    e2e: WindowedLatency,
    api_arrivals: Vec<RateCounter>,
    next_request: u64,
    stats: WorldStats,
    obs: graf_obs::Obs,
    prof: graf_prof::Prof,
    /// `Some` when this world is one shard of a [`crate::exec::ShardedWorld`]:
    /// ownership map, mailboxes and the remote-start payload slab. `None`
    /// (serial mode) keeps every cross-shard branch untaken.
    shard: Option<Box<ShardCtx>>,
}

/// Profiler phase name for an event kind (one scope per dispatched event).
fn event_phase(ev: &Event) -> &'static str {
    match ev {
        Event::Arrival { .. } => "sim.event_loop.arrival",
        Event::RequestTimeout { .. } => "sim.event_loop.timeout",
        Event::StartFrame { .. } => "sim.event_loop.start_frame",
        Event::JobCheck { .. } => "sim.event_loop.job_check",
        Event::InstanceReady { .. } => "sim.event_loop.instance_ready",
        Event::ChildReturn { .. } => "sim.event_loop.child_return",
        Event::RemoteStart { .. } => "sim.event_loop.remote_start",
    }
}

impl World {
    /// Creates a world for `topo` with the given config and seed.
    pub fn new(topo: AppTopology, cfg: SimConfig, seed: u64) -> Self {
        let root_rng = DetRng::new(seed);
        let mut plans: Vec<ApiPlan> = topo.apis.iter().map(|a| flatten(&a.tree)).collect();
        // Precompute the lognormal parameters of each plan node's work draw
        // (the values `assign_job` would otherwise derive per assignment).
        for plan in &mut plans {
            for node in &mut plan.nodes {
                let spec = &topo.services[node.service.0 as usize];
                let sigma2 = (1.0 + spec.cv * spec.cv).ln();
                node.work_mean_mc_us = (spec.work_ms * 1_000_000.0 * node.work_scale).max(1e-6);
                node.work_mu = node.work_mean_mc_us.ln() - 0.5 * sigma2;
            }
        }
        let work_sigma = topo.services.iter().map(|s| (1.0 + s.cv * s.cv).ln().sqrt()).collect();
        let services: Vec<ServiceRuntime> = topo
            .services
            .iter()
            .map(|s| {
                let mut rt = ServiceRuntime::new(s.clone(), cfg.window_us, cfg.retain_windows);
                rt.cpu.set_resolution(cfg.cpu_checkpoint_us);
                rt
            })
            .collect();
        let e2e = WindowedLatency::new(cfg.window_us, cfg.retain_windows);
        let api_arrivals =
            topo.apis.iter().map(|_| RateCounter::new(cfg.window_us, cfg.retain_windows)).collect();
        Self {
            plans,
            work_sigma,
            services,
            instances: Vec::new(),
            load_slots: Vec::new(),
            frames: Vec::new(),
            free_frames: Vec::new(),
            requests: Vec::new(),
            free_requests: Vec::new(),
            live_requests: 0,
            queue: Queue::new(cfg.event_queue),
            scratch_finished: Vec::new(),
            scratch_ids: Vec::new(),
            now: SimTime::ZERO,
            rng_work: root_rng.fork(seed ^ 0x1),
            rng_trace: root_rng.fork(seed ^ 0x2),
            span_faults: Vec::new(),
            traces: TraceStore::new(cfg.trace_capacity),
            completions: Vec::new(),
            e2e,
            api_arrivals,
            next_request: 0,
            stats: WorldStats::default(),
            obs: graf_obs::Obs::disabled(),
            prof: graf_prof::Prof::disabled(),
            shard: None,
            cfg,
            topo,
        }
    }

    /// Attaches a telemetry handle. The world reports processed-event counts
    /// (`graf.sim.events`) and queue depth (`graf.sim.queue_depth`); telemetry
    /// never influences simulation behaviour.
    pub fn set_obs(&mut self, obs: graf_obs::Obs) {
        self.obs = obs;
    }

    /// Attaches a profiler handle. The event loop then attributes wall time
    /// to per-phase scopes (`sim.event_loop.*`, `sim.station.*`,
    /// `sim.span_record`); profiling never influences simulation behaviour —
    /// a disabled handle costs one branch per instrumentation point.
    pub fn set_prof(&mut self, prof: graf_prof::Prof) {
        self.prof = prof;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The application topology.
    pub fn topology(&self) -> &AppTopology {
        &self.topo
    }

    /// The simulation config.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Aggregate counters.
    pub fn stats(&self) -> WorldStats {
        self.stats
    }

    // ------------------------------------------------------------------
    // Capacity management
    // ------------------------------------------------------------------

    /// Adds `n` instances of `quota_mc` millicores to `service`, becoming
    /// ready at `ready_at` (clamped to now). Returns their ids.
    pub fn add_instances(
        &mut self,
        service: ServiceId,
        n: usize,
        quota_mc: f64,
        ready_at: SimTime,
    ) -> Vec<InstanceId> {
        let ready_at = ready_at.max(self.now);
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            let id = InstanceId(self.instances.len() as u32);
            let state = InstanceState::Starting { ready_at };
            self.instances.push(Some(Instance::new(
                service,
                quota_mc,
                state,
                self.cfg.per_job_cap_mc,
                self.now,
            )));
            // Starting instances are not schedulable: they enter the load
            // index with the EMPTY key and start competing on readiness.
            self.load_slots.push(self.services[service.0 as usize].load.insert(loadidx::EMPTY));
            self.services[service.0 as usize].instances.push(id);
            self.queue.schedule(ready_at, Event::InstanceReady { instance: id });
            ids.push(id);
        }
        debug_assert_eq!(self.load_slots.len(), self.instances.len());
        ids
    }

    /// Re-derives the load-index key of `iid` from its current state: ready
    /// instances compete as `(job_count, id)`, everything else is parked on
    /// the EMPTY sentinel. Must be called after every mutation that changes
    /// an instance's job count or schedulability.
    fn refresh_load(&mut self, iid: InstanceId) {
        let slot = self.load_slots[iid.0 as usize];
        if slot == u32::MAX {
            return; // deleted
        }
        let Some(inst) = self.instances[iid.0 as usize].as_ref() else { return };
        let key = if inst.accepts_jobs() {
            loadidx::pack(inst.job_count() as u32, iid.0)
        } else {
            loadidx::EMPTY
        };
        self.services[inst.service.0 as usize].load.update(slot, key);
    }

    /// Removes up to `n` instances from `service`.
    ///
    /// Starting instances are cancelled first (they have no jobs); then ready
    /// instances with the fewest in-flight jobs are drained: they finish their
    /// jobs but accept no new ones, and their quota stops counting
    /// immediately (Kubernetes removes the endpoint from the Service when the
    /// pod begins terminating). Returns how many were removed.
    pub fn remove_instances(&mut self, service: ServiceId, n: usize) -> usize {
        let mut removed = 0;
        // Pass 1: cancel Starting instances (newest first, as k8s does).
        // The candidate list reuses the world's scratch buffer.
        let mut starting = std::mem::take(&mut self.scratch_ids);
        starting.clear();
        starting.extend(self.services[service.0 as usize].instances.iter().rev().copied().filter(
            |id| {
                matches!(
                    self.instances[id.0 as usize].as_ref().map(|i| i.state),
                    Some(InstanceState::Starting { .. })
                )
            },
        ));
        for &id in &starting {
            if removed >= n {
                break;
            }
            self.delete_instance(id);
            removed += 1;
        }
        starting.clear();
        self.scratch_ids = starting;
        // Pass 2: drain ready instances with the fewest jobs. The load index
        // holds exactly the ready instances keyed by (jobs, id), so its
        // minimum is the old linear scan's pick.
        while removed < n {
            let Some(key) = self.services[service.0 as usize].load.min_key() else { break };
            let (jobs, id) = (((key >> 32) as u32) as usize, InstanceId(key as u32));
            {
                let inst = self.instances[id.0 as usize].as_mut().expect("live instance");
                let used = inst.advance(self.now);
                inst.start_draining();
                // Draining bumped the epoch, invalidating any scheduled
                // completion check: re-arm it so in-flight jobs still finish.
                let epoch = inst.epoch;
                let next = inst.next_completion(self.now);
                self.services[service.0 as usize].cpu.add_usage(self.now.as_micros(), used);
                if let Some(t) = next {
                    self.queue.schedule(t, Event::JobCheck { instance: id, epoch });
                }
            }
            self.refresh_load(id); // no longer schedulable
            self.sync_quota(service);
            if jobs == 0 {
                self.delete_instance(id);
            }
            removed += 1;
        }
        removed
    }

    fn delete_instance(&mut self, id: InstanceId) {
        if let Some(inst) = self.instances[id.0 as usize].take() {
            let service = inst.service;
            let svc = &mut self.services[service.0 as usize];
            svc.instances.retain(|&x| x != id);
            svc.load.remove(self.load_slots[id.0 as usize]);
            self.load_slots[id.0 as usize] = u32::MAX;
            drop(inst);
            // The instance's service is known before the drop, so the quota
            // integral recompute is O(one service), not all of them.
            self.sync_quota(service);
        }
    }

    /// Recomputes the ready-quota integral for `service`.
    fn sync_quota(&mut self, service: ServiceId) {
        let total: f64 = self.services[service.0 as usize]
            .instances
            .iter()
            .filter_map(|id| self.instances[id.0 as usize].as_ref())
            .filter(|i| i.state == InstanceState::Ready)
            .map(|i| i.quota_mc)
            .sum();
        self.services[service.0 as usize].cpu.set_quota(self.now.as_micros(), total);
    }

    /// Vertically rescales every ready instance of `service` to `quota_mc`
    /// millicores (the paper's footnote-1 alternative to horizontal scaling;
    /// bounded in reality by the node's capacity, which is why GRAF scales
    /// horizontally).
    pub fn resize_instances(&mut self, service: ServiceId, quota_mc: f64) {
        assert!(quota_mc > 0.0);
        let mut ids = std::mem::take(&mut self.scratch_ids);
        ids.clear();
        ids.extend_from_slice(&self.services[service.0 as usize].instances);
        for &id in &ids {
            let Some(inst) = self.instances[id.0 as usize].as_mut() else { continue };
            if inst.state != InstanceState::Ready {
                continue;
            }
            let used = inst.advance(self.now);
            inst.set_quota(quota_mc);
            let epoch = inst.epoch;
            let next = inst.next_completion(self.now);
            self.services[service.0 as usize].cpu.add_usage(self.now.as_micros(), used);
            if let Some(t) = next {
                self.queue.schedule(t, Event::JobCheck { instance: id, epoch });
            }
        }
        ids.clear();
        self.scratch_ids = ids;
        self.sync_quota(service);
    }

    /// Number of instances of `service` in each state: `(starting, ready, draining)`.
    pub fn instance_counts(&self, service: ServiceId) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for id in &self.services[service.0 as usize].instances {
            if let Some(i) = self.instances[id.0 as usize].as_ref() {
                match i.state {
                    InstanceState::Starting { .. } => c.0 += 1,
                    InstanceState::Ready => c.1 += 1,
                    InstanceState::Draining => c.2 += 1,
                }
            }
        }
        c
    }

    /// Total ready quota of `service` in millicores.
    pub fn ready_quota_mc(&self, service: ServiceId) -> f64 {
        self.services[service.0 as usize]
            .instances
            .iter()
            .filter_map(|id| self.instances[id.0 as usize].as_ref())
            .filter(|i| i.state == InstanceState::Ready)
            .map(|i| i.quota_mc)
            .sum()
    }

    // ------------------------------------------------------------------
    // Load injection & the event loop
    // ------------------------------------------------------------------

    /// Schedules one request of `api` to arrive at time `t` (>= now).
    pub fn inject(&mut self, api: ApiId, t: SimTime) {
        assert!((api.0 as usize) < self.plans.len(), "unknown api {}", api.0);
        self.queue.schedule(t.max(self.now), Event::Arrival { api });
    }

    /// Processes all events up to and including `t`, then sets now = `t`.
    pub fn run_until(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot run backwards");
        let events_before = self.stats.events;
        let _loop_scope = self.prof.enter("sim.event_loop");
        if self.prof.is_enabled() {
            // The loop alternates between exactly two scopes — queue_pop and
            // the current event's phase — via `Prof::switch`, so every
            // hand-off uses one shared clock read and no wall time leaks into
            // the loop itself.
            let mut scope = self.prof.enter("sim.event_loop.queue_pop");
            loop {
                let popped = self.queue.pop_due(t);
                let Some((et, ev)) = popped else { break };
                debug_assert!(et >= self.now);
                self.now = et;
                self.stats.events += 1;
                scope = self.prof.switch(scope, event_phase(&ev));
                self.prof.work(1);
                self.dispatch(ev);
                scope = self.prof.switch(scope, "sim.event_loop.queue_pop");
            }
            drop(scope);
        } else {
            // Identical dispatch without the per-event scope hand-offs: with
            // the profiler disabled a switch is only a few moves and branches,
            // but two per event is measurable at millions of events/s. The
            // event counter accumulates locally and lands once at the end.
            let mut n = 0u64;
            while let Some((et, ev)) = self.queue.pop_due(t) {
                debug_assert!(et >= self.now);
                self.now = et;
                n += 1;
                self.dispatch(ev);
            }
            self.stats.events += n;
        }
        self.now = t;
        if self.obs.is_enabled() {
            let delta = self.stats.events - events_before;
            if delta > 0 {
                self.obs.counter_add("graf.sim.events", &[], delta);
            }
            self.obs.gauge_set("graf.sim.queue_depth", &[], self.queue.len() as f64);
        }
    }

    /// Runs until the event queue is empty or `limit` is reached.
    pub fn run_to_quiescence(&mut self, limit: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > limit {
                break;
            }
            self.run_until(t);
        }
        self.now = self.now.max(limit.min(self.queue.peek_time().unwrap_or(limit)));
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Arrival { api } => self.on_arrival(api),
            Event::RequestTimeout { request, slot } => self.on_request_timeout(request, slot),
            Event::StartFrame { frame, generation } => self.on_start_frame(frame, generation),
            Event::JobCheck { instance, epoch } => self.on_job_check(instance, epoch),
            Event::InstanceReady { instance } => self.on_instance_ready(instance),
            Event::ChildReturn { frame, generation } => self.on_child_return(frame, generation),
            Event::RemoteStart { slot } => self.on_remote_start(slot),
        }
    }

    /// Next request id. Serial worlds use the bare monotone counter; a shard
    /// tags the top 16 bits with `shard index + 1` so ids stay globally
    /// unique across the fleet (and never collide with [`FREE_REQUEST`]:
    /// the per-shard counter can't realistically reach 2⁴⁸).
    fn next_request_id(&mut self) -> RequestId {
        let n = self.next_request;
        self.next_request += 1;
        match &self.shard {
            Some(ctx) => RequestId(((ctx.index as u64 + 1) << 48) | n),
            None => RequestId(n),
        }
    }

    fn on_arrival(&mut self, api: ApiId) {
        self.api_arrivals[api.0 as usize].record(self.now.as_micros());
        let rid = self.next_request_id();
        self.stats.injected += 1;
        let sampled = self.rng_trace.chance(self.cfg.trace_sample);
        let span_budget = self.plans[api.0 as usize].span_budget;
        let slot = self.alloc_request(rid, api, sampled, rid.0, None, span_budget);
        if let Some(to) = self.cfg.request_timeout_us {
            self.queue
                .schedule(SimTime(self.now.0 + to), Event::RequestTimeout { request: rid, slot });
        }
        let plan = &self.plans[api.0 as usize];
        let root = plan.root;
        let root_service = plan.nodes[root as usize].service;
        let fid = self.alloc_frame(rid, slot, api, root, None, 0, None, root_service);
        self.schedule_frame_start(fid);
    }

    /// Claims a request slab slot, reusing a freed one (and its `frames`
    /// buffer) when available. `span_budget` is the number of frames the
    /// slot will create: the whole call tree for a root request, the remote
    /// subtree for a proxy slot.
    fn alloc_request(
        &mut self,
        rid: RequestId,
        api: ApiId,
        sampled: bool,
        trace_id: u64,
        origin: Option<RemoteOrigin>,
        span_budget: u32,
    ) -> u32 {
        self.live_requests += 1;
        let span_budget = span_budget as usize;
        // A sampled request owns a trace-store slab slot; unsampled requests
        // carry a dead handle that is never passed back to the store.
        let trace = if sampled { self.traces.open_trace(span_budget) } else { OpenTrace(u32::MAX) };
        let slot = if let Some(slot) = self.free_requests.pop() {
            let s = &mut self.requests[slot as usize];
            debug_assert_eq!(s.request, FREE_REQUEST, "slot on free-list must be free");
            debug_assert!(s.frames.is_empty(), "freed slot keeps a cleared frames buffer");
            s.request = rid;
            s.api = api;
            s.start = self.now;
            s.sampled = sampled;
            s.trace_id = trace_id;
            s.trace = trace;
            s.origin = origin;
            slot
        } else {
            // Slab growth: only while the in-flight high-water mark rises,
            // never in steady state.
            self.requests.push(RequestSlot {
                request: rid,
                api,
                start: self.now,
                sampled,
                trace_id,
                trace,
                origin,
                frames: Vec::new(), // graf-lint: allow(hot-path-alloc, slab growth is amortized and stops at the in-flight high-water mark)
            });
            (self.requests.len() - 1) as u32
        };
        // The frame list holds every frame the request will create — exactly
        // `span_budget`, fixed by the API's call tree. One up-front reservation
        // replaces the per-frame growth chain (slots recycled from the
        // free-list usually carry enough capacity already, making this free).
        let frames = &mut self.requests[slot as usize].frames;
        if frames.capacity() < span_budget {
            frames.reserve(span_budget - frames.len());
        }
        slot
    }

    /// Releases `slot` back to the slab free-list, keeping its `frames`
    /// buffer capacity for the next occupant.
    fn free_request(&mut self, slot: u32) {
        let s = &mut self.requests[slot as usize];
        s.request = FREE_REQUEST;
        s.frames.clear();
        self.free_requests.push(slot);
        self.live_requests -= 1;
    }

    /// `service` must be `plans[api].nodes[plan_node].service` — callers
    /// already hold the plan node, so passing it in saves the re-walk.
    /// `span_id`/`parent_span` are the frame's structural span coordinates
    /// (see [`PlanNode::subtree_frames`]); a request's root passes `(0,
    /// None)`, a remote proxy passes the coordinates carried by the message.
    #[allow(clippy::too_many_arguments)] // internal slab constructor; every argument is hot-path data the caller already holds
    fn alloc_frame(
        &mut self,
        request: RequestId,
        req_slot: u32,
        api: ApiId,
        plan_node: u16,
        parent: Option<FrameId>,
        span_id: u32,
        parent_span: Option<u32>,
        service: ServiceId,
    ) -> FrameId {
        debug_assert_eq!(service, self.plans[api.0 as usize].nodes[plan_node as usize].service);
        debug_assert_eq!(self.requests[req_slot as usize].request, request);
        let frame = Frame {
            request,
            req_slot,
            plan_node,
            service,
            parent,
            span_id,
            parent_span,
            start: self.now,
            state: FrameState::PendingInstance,
            instance: None,
            generation: 0,
        };
        let fid = if let Some(slot) = self.free_frames.pop() {
            let generation = self.frames[slot as usize].generation.wrapping_add(1);
            self.frames[slot as usize] = Frame { generation, ..frame };
            FrameId(slot)
        } else {
            self.frames.push(frame);
            FrameId((self.frames.len() - 1) as u32)
        };
        let generation = self.frames[fid.0 as usize].generation;
        self.requests[req_slot as usize].frames.push((fid, generation));
        fid
    }

    fn schedule_frame_start(&mut self, fid: FrameId) {
        let f = &self.frames[fid.0 as usize];
        let base = self.services[f.service.0 as usize].spec.base_us;
        let gen = f.generation;
        self.queue.schedule(
            SimTime(self.now.0 + base),
            Event::StartFrame { frame: fid, generation: gen },
        );
    }

    fn on_start_frame(&mut self, fid: FrameId, generation: u32) {
        let f = &self.frames[fid.0 as usize];
        if f.generation != generation || f.state != FrameState::PendingInstance {
            return; // stale event
        }
        self.begin_frame(fid);
    }

    /// The frame has arrived at its service: record the arrival and assign
    /// an instance (or queue). Shared by the local start path (after the
    /// staleness check) and the remote-start path (which has no staleness to
    /// check — the frame was allocated in the same event).
    fn begin_frame(&mut self, fid: FrameId) {
        let service = self.frames[fid.0 as usize].service;
        self.services[service.0 as usize].record_arrival(self.now);
        match self.pick_instance(service) {
            Some(iid) => self.assign_job(iid, fid),
            None => self.services[service.0 as usize].pending.push_back(fid),
        }
    }

    /// Least-loaded ready instance of `service` — O(1) via the per-service
    /// min-load index, which orders exactly like the former
    /// `min_by_key((jobs, id))` linear scan.
    fn pick_instance(&self, service: ServiceId) -> Option<InstanceId> {
        self.services[service.0 as usize].load.min_key().map(|key| InstanceId(key as u32))
    }

    fn assign_job(&mut self, iid: InstanceId, fid: FrameId) {
        let (api, plan_node, service) = {
            let f = &self.frames[fid.0 as usize];
            let api = self.requests[f.req_slot as usize].api;
            (api, f.plan_node, f.service)
        };
        let node = &self.plans[api.0 as usize].nodes[plan_node as usize];
        let contention = self.services[service.0 as usize].slowdown_at(self.now.as_micros());
        // work_ms is in full-core milliseconds: convert to millicore·µs. The
        // common no-contention draw uses the parameters cached at plan build
        // (bitwise identical to deriving them here, and two `ln` cheaper);
        // an active contention window shifts the mean, so that path derives
        // them per call exactly as before.
        let work = if contention == 1.0 {
            let sigma = self.work_sigma[service.0 as usize];
            if sigma == 0.0 {
                node.work_mean_mc_us
            } else {
                (node.work_mu + sigma * self.rng_work.std_normal()).exp()
            }
        } else {
            let spec = &self.services[service.0 as usize].spec;
            let mean_mc_us = spec.work_ms * 1_000_000.0 * node.work_scale * contention;
            self.rng_work.lognormal_mean_cv(mean_mc_us.max(1e-6), spec.cv)
        };
        let (used, epoch, next) = {
            let _station = self.prof.enter("sim.station.assign");
            self.prof.work(1);
            let inst = self.instances[iid.0 as usize].as_mut().expect("live instance");
            let used = inst.advance(self.now);
            inst.push_job(fid, work);
            (used, inst.epoch, inst.next_completion(self.now))
        };
        self.services[service.0 as usize].cpu.add_usage(self.now.as_micros(), used);
        self.frames[fid.0 as usize].state = FrameState::Working;
        self.frames[fid.0 as usize].instance = Some(iid.0);
        self.refresh_load(iid);
        if let Some(t) = next {
            self.queue.schedule(t, Event::JobCheck { instance: iid, epoch });
        }
    }

    fn on_job_check(&mut self, iid: InstanceId, epoch: u64) {
        {
            let Some(inst) = self.instances[iid.0 as usize].as_ref() else { return };
            if inst.epoch != epoch {
                return; // superseded
            }
        }
        // Finished-frame list reuses the world scratch buffer: a burst of
        // same-timestamp completions costs zero allocations.
        let mut finished = std::mem::take(&mut self.scratch_finished);
        debug_assert!(finished.is_empty());
        let inst = self.instances[iid.0 as usize].as_mut().expect("checked above");
        let service = inst.service;
        let (used, drained, epoch, next) = {
            let _station = self.prof.enter("sim.station.advance");
            self.prof.work(1);
            let used = inst.advance(self.now);
            inst.take_finished_into(&mut finished);
            (used, inst.drained(), inst.epoch, inst.next_completion(self.now))
        };
        self.services[service.0 as usize].cpu.add_usage(self.now.as_micros(), used);
        if drained {
            self.delete_instance(iid);
        } else {
            if !finished.is_empty() {
                self.refresh_load(iid);
            }
            if let Some(t) = next {
                self.queue.schedule(t, Event::JobCheck { instance: iid, epoch });
            }
        }
        for &f in &finished {
            self.frame_work_done(f);
        }
        finished.clear();
        self.scratch_finished = finished;
    }

    fn on_instance_ready(&mut self, iid: InstanceId) {
        let Some(inst) = self.instances[iid.0 as usize].as_mut() else { return };
        if !matches!(inst.state, InstanceState::Starting { .. }) {
            return;
        }
        inst.state = InstanceState::Ready;
        let service = inst.service;
        self.refresh_load(iid);
        self.sync_quota(service);
        // Admit everything that was waiting; PS stations have no admission cap.
        while let Some(fid) = self.services[service.0 as usize].pending.pop_front() {
            match self.pick_instance(service) {
                Some(target) => self.assign_job(target, fid),
                None => {
                    self.services[service.0 as usize].pending.push_front(fid);
                    break;
                }
            }
        }
    }

    /// Client timeout: the request is abandoned. All of its live frames are
    /// torn down (queued ones dequeued, running jobs cancelled — the client
    /// hung up, and upstream cancellation propagates in a service mesh), the
    /// trace is aborted, and a completion is emitted with the capped latency.
    fn on_request_timeout(&mut self, request: RequestId, slot: u32) {
        if self.requests[slot as usize].request != request {
            return; // completed before the deadline (slot freed or reused)
        }
        // Tear down by index: nothing below appends to this slot's frame
        // list, and indexing avoids borrowing the slab across the mutations.
        let n_frames = self.requests[slot as usize].frames.len();
        for i in 0..n_frames {
            let (fid, generation) = self.requests[slot as usize].frames[i];
            let f = &self.frames[fid.0 as usize];
            if f.generation != generation || f.is_done() {
                continue;
            }
            let service = f.service;
            match f.state {
                FrameState::PendingInstance => {
                    self.services[service.0 as usize].pending.retain(|&x| x != fid);
                }
                FrameState::Working => {
                    if let Some(iid) = f.instance {
                        if let Some(inst) = self.instances[iid as usize].as_mut() {
                            let used = inst.advance(self.now);
                            let removed = inst.remove_job(fid);
                            let epoch = inst.epoch;
                            let next = inst.next_completion(self.now);
                            let drained = inst.drained();
                            self.services[service.0 as usize]
                                .cpu
                                .add_usage(self.now.as_micros(), used);
                            if removed {
                                if drained {
                                    self.delete_instance(InstanceId(iid));
                                } else {
                                    self.refresh_load(InstanceId(iid));
                                    if let Some(t) = next {
                                        self.queue.schedule(
                                            t,
                                            Event::JobCheck { instance: InstanceId(iid), epoch },
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                FrameState::Children { .. } | FrameState::Done => {}
            }
            self.frames[fid.0 as usize].state = FrameState::Done;
            self.free_frames.push(fid.0);
        }
        let (api, start, sampled, trace) = {
            let meta = &self.requests[slot as usize];
            (meta.api, meta.start, meta.sampled, meta.trace)
        };
        if sampled {
            self.traces.abort_open(trace);
        }
        self.free_request(slot);
        let completion = Completion { request, api, start, end: self.now, timed_out: true };
        self.e2e.record(self.now.as_micros(), completion.latency_us());
        self.completions.push(completion);
        self.stats.timeouts += 1;
        self.stats.completed += 1;
    }

    // ------------------------------------------------------------------
    // Frame state machine
    // ------------------------------------------------------------------

    fn frame_work_done(&mut self, fid: FrameId) {
        let (api, plan_node) = {
            let f = &self.frames[fid.0 as usize];
            let api = self.requests[f.req_slot as usize].api;
            (api, f.plan_node)
        };
        let node = &self.plans[api.0 as usize].nodes[plan_node as usize];
        if node.stages.is_empty() {
            self.complete_frame(fid);
            return;
        }
        self.start_stage(fid, 0);
    }

    /// Launches stage `stage` of frame `fid`: all calls of the stage (each
    /// child × its repeat count) start in parallel. In shard mode, a call
    /// whose service another shard owns travels as a [`ShardMsg::Start`]
    /// instead of a local frame; the stage's `outstanding` count includes it
    /// all the same — the reply arrives as a [`Event::ChildReturn`].
    fn start_stage(&mut self, fid: FrameId, stage: u16) {
        let (api, plan_node, request, req_slot) = {
            let f = &self.frames[fid.0 as usize];
            let api = self.requests[f.req_slot as usize].api;
            (api, f.plan_node, f.request, f.req_slot)
        };
        let (parent_span, parent_gen) = {
            let f = &self.frames[fid.0 as usize];
            (f.span_id, f.generation)
        };
        let sharded = self.shard.is_some();
        // Snapshot the stage's call list (child, repeat, service, span
        // offset, subtree size) into a stack buffer: the per-child loop
        // needs `&mut self` for `alloc_frame`, and without the snapshot each
        // child re-walks four levels of `self.plans` indexing. Stays
        // allocation-free either way — wider stages (rare) fall back to the
        // index re-walk.
        const STACK_CALLS: usize = 8;
        let plan = &self.plans[api.0 as usize];
        let stage_calls = &plan.nodes[plan_node as usize].stages[stage as usize];
        let n_calls = stage_calls.len();
        if n_calls <= STACK_CALLS {
            let mut calls = [(0u16, 0u32, ServiceId(0), 0u32, 0u32); STACK_CALLS];
            let mut total: u32 = 0;
            for (ci, &c) in stage_calls.iter().enumerate() {
                let node = &plan.nodes[c as usize];
                let offset = plan.nodes[plan_node as usize].child_offsets[stage as usize][ci];
                calls[ci] = (c, node.repeat, node.service, offset, node.subtree_frames);
                total += node.repeat;
            }
            debug_assert!(total > 0, "stages are non-empty by construction");
            self.frames[fid.0 as usize].state = FrameState::Children { stage, outstanding: total };
            for &(c, reps, service, offset, subtree) in &calls[..n_calls] {
                for rep in 0..reps {
                    let span = parent_span + offset + rep * subtree;
                    if !sharded || self.service_is_local(service) {
                        let child = self.alloc_frame(
                            request,
                            req_slot,
                            api,
                            c,
                            Some(fid),
                            span,
                            Some(parent_span),
                            service,
                        );
                        self.schedule_frame_start(child);
                    } else {
                        self.send_remote_start(
                            fid,
                            parent_gen,
                            req_slot,
                            api,
                            c,
                            span,
                            parent_span,
                            service,
                        );
                    }
                }
            }
            return;
        }
        let mut total: u32 = 0;
        for ci in 0..n_calls {
            let plan = &self.plans[api.0 as usize];
            let c = plan.nodes[plan_node as usize].stages[stage as usize][ci];
            total += plan.nodes[c as usize].repeat;
        }
        debug_assert!(total > 0, "stages are non-empty by construction");
        self.frames[fid.0 as usize].state = FrameState::Children { stage, outstanding: total };
        for ci in 0..n_calls {
            let plan = &self.plans[api.0 as usize];
            let c = plan.nodes[plan_node as usize].stages[stage as usize][ci];
            let reps = plan.nodes[c as usize].repeat;
            let service = plan.nodes[c as usize].service;
            let offset = plan.nodes[plan_node as usize].child_offsets[stage as usize][ci];
            let subtree = plan.nodes[c as usize].subtree_frames;
            for rep in 0..reps {
                let span = parent_span + offset + rep * subtree;
                if !sharded || self.service_is_local(service) {
                    let child = self.alloc_frame(
                        request,
                        req_slot,
                        api,
                        c,
                        Some(fid),
                        span,
                        Some(parent_span),
                        service,
                    );
                    self.schedule_frame_start(child);
                } else {
                    self.send_remote_start(
                        fid,
                        parent_gen,
                        req_slot,
                        api,
                        c,
                        span,
                        parent_span,
                        service,
                    );
                }
            }
        }
    }

    /// `true` when `service` runs in this world (always, in serial mode).
    #[inline]
    fn service_is_local(&self, service: ServiceId) -> bool {
        match &self.shard {
            Some(ctx) => ctx.owner[service.0 as usize] == ctx.index,
            None => true,
        }
    }

    /// Enqueues a cross-shard call to `service` (owned by another shard):
    /// the child starts over there as a proxy request whose spans join this
    /// request's trace, and its completion returns as a
    /// [`Event::ChildReturn`] for `parent`.
    #[allow(clippy::too_many_arguments)] // mirror of alloc_frame's argument set, plus the origin generation
    fn send_remote_start(
        &mut self,
        parent: FrameId,
        parent_generation: u32,
        req_slot: u32,
        api: ApiId,
        plan_node: u16,
        span_id: u32,
        parent_span: u32,
        service: ServiceId,
    ) {
        let (trace_id, sampled) = {
            let meta = &self.requests[req_slot as usize];
            (meta.trace_id, meta.sampled)
        };
        let base = self.services[service.0 as usize].spec.base_us;
        let ctx = self.shard.as_mut().expect("remote child implies shard mode");
        let msg = crate::shard::RemoteStartMsg {
            issue: self.now,
            start_at: SimTime(self.now.0 + base),
            api,
            plan_node,
            span_id,
            parent_span,
            trace_id,
            sampled,
            origin: RemoteOrigin { shard: ctx.index, frame: parent, generation: parent_generation },
        };
        let dst = ctx.owner[service.0 as usize] as usize;
        debug_assert_ne!(dst, ctx.index as usize);
        ctx.outbox[dst].push(ShardMsg::Start(msg));
    }

    /// A child's response arrived after a nonzero `return_us` transit (from
    /// a local child or a remote shard's `Done`). Dropped when stale: the
    /// parent was torn down by a timeout (state left `Children`) or its slot
    /// was reused (generation moved on).
    fn on_child_return(&mut self, fid: FrameId, generation: u32) {
        let f = &self.frames[fid.0 as usize];
        if f.generation != generation || !matches!(f.state, FrameState::Children { .. }) {
            return; // stale return
        }
        self.child_completed(fid);
    }

    fn child_completed(&mut self, fid: FrameId) {
        let FrameState::Children { stage, outstanding } = self.frames[fid.0 as usize].state else {
            unreachable!("child completion outside Children state")
        };
        let outstanding = outstanding - 1;
        self.frames[fid.0 as usize].state = FrameState::Children { stage, outstanding };
        if outstanding > 0 {
            return;
        }
        let (api, plan_node) = {
            let f = &self.frames[fid.0 as usize];
            let api = self.requests[f.req_slot as usize].api;
            (api, f.plan_node)
        };
        let n_stages = self.plans[api.0 as usize].nodes[plan_node as usize].stages.len();
        if (stage as usize + 1) < n_stages {
            self.start_stage(fid, stage + 1);
        } else {
            self.complete_frame(fid);
        }
    }

    fn complete_frame(&mut self, fid: FrameId) {
        let (request, req_slot, service, parent, span_id, parent_span, start) = {
            let f = &mut self.frames[fid.0 as usize];
            f.state = FrameState::Done;
            (f.request, f.req_slot, f.service, f.parent, f.span_id, f.parent_span, f.start)
        };
        let latency = (self.now - start).as_micros();
        self.services[service.0 as usize].record_latency(self.now, latency);

        let meta = &self.requests[req_slot as usize];
        let api = meta.api;
        let sampled = meta.sampled;
        let trace = meta.trace;
        let trace_id = meta.trace_id;
        // Trace fault: drop the span with the window's probability. The
        // chance is drawn from `rng_trace` only while a window is active, so
        // runs without trace faults consume exactly the baseline draws.
        let now_us = self.now.as_micros();
        let drop_p = if self.span_faults.is_empty() {
            0.0
        } else {
            self.span_faults
                .iter()
                .filter(|&&(from, until, _)| from <= now_us && now_us < until)
                .map(|&(_, _, p)| p)
                .fold(0.0f64, f64::max)
        };
        if sampled && drop_p > 0.0 && self.rng_trace.chance(drop_p) {
            self.stats.spans_dropped += 1;
        } else if sampled {
            let _span = self.prof.enter("sim.span_record");
            self.prof.work(1);
            self.traces.push_span(
                trace,
                Span {
                    trace_id: TraceId(trace_id),
                    span_id: SpanId(span_id),
                    parent: parent_span.map(SpanId),
                    service: service.0,
                    api: api.0,
                    start_us: start.as_micros(),
                    end_us: self.now.as_micros(),
                },
            );
            self.stats.spans += 1;
        }

        // Recycle the frame slot.
        self.free_frames.push(fid.0);

        match parent {
            Some(p) => {
                if self.cfg.return_us == 0 {
                    // Zero-delay return: resume the parent in the same event,
                    // bit-identical to the original serial semantics.
                    self.child_completed(p);
                } else {
                    let generation = self.frames[p.0 as usize].generation;
                    self.queue.schedule(
                        SimTime(self.now.0 + self.cfg.return_us),
                        Event::ChildReturn { frame: p, generation },
                    );
                }
            }
            None => match self.requests[req_slot as usize].origin {
                Some(origin) => {
                    // Remote-subtree proxy: the finished span fragment joins
                    // the root's trace (under the sentinel api so the merge
                    // can tell fragments from roots), and the completion
                    // travels home as a Done message. No Completion, no e2e
                    // sample, no completed count — the root's shard owns the
                    // request-level record.
                    if sampled {
                        self.traces.finish_open(trace, TraceId(trace_id), REMOTE_FRAGMENT_API);
                    }
                    self.free_request(req_slot);
                    let deliver = SimTime(self.now.0 + self.cfg.return_us);
                    let ctx = self.shard.as_mut().expect("remote origin implies shard mode");
                    ctx.outbox[origin.shard as usize].push(ShardMsg::Done {
                        time: deliver,
                        frame: origin.frame,
                        generation: origin.generation,
                    });
                }
                None => {
                    let req_start = self.requests[req_slot as usize].start;
                    self.free_request(req_slot);
                    let completion = Completion {
                        request,
                        api,
                        start: req_start,
                        end: self.now,
                        timed_out: false,
                    };
                    self.e2e.record(self.now.as_micros(), completion.latency_us());
                    self.completions.push(completion);
                    self.stats.completed += 1;
                    if sampled {
                        self.traces.finish_open(trace, TraceId(trace_id), api.0);
                    }
                }
            },
        }
    }

    /// A cross-shard call arrived: build a proxy request slot whose root
    /// frame executes the remote subtree here. The frame's clock starts at
    /// the caller's issue time (we are delivered at `issue + base_us`, the
    /// same instant a local child's `StartFrame` would fire), so spans and
    /// per-service latencies match the serial execution exactly.
    fn on_remote_start(&mut self, slot: u32) {
        let msg = {
            let ctx = self.shard.as_mut().expect("RemoteStart only fires in shard mode");
            ctx.pool_free.push(slot);
            ctx.pool[slot as usize]
        };
        let (service, budget) = {
            let node = &self.plans[msg.api.0 as usize].nodes[msg.plan_node as usize];
            (node.service, node.subtree_frames)
        };
        debug_assert!(self.service_is_local(service), "remote start routed to the wrong shard");
        let rid = self.next_request_id();
        let req_slot =
            self.alloc_request(rid, msg.api, msg.sampled, msg.trace_id, Some(msg.origin), budget);
        let fid = self.alloc_frame(
            rid,
            req_slot,
            msg.api,
            msg.plan_node,
            None,
            msg.span_id,
            Some(msg.parent_span),
            service,
        );
        self.frames[fid.0 as usize].start = msg.issue;
        self.requests[req_slot as usize].start = msg.issue;
        self.begin_frame(fid);
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Completed requests since the last drain.
    ///
    /// Allocating convenience wrapper; steady-state callers should use
    /// [`World::drain_completions_into`] with a reused buffer.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Moves completed requests since the last drain into `out` (cleared
    /// first). The buffers swap, so a caller draining in a loop settles into
    /// two recycled allocations regardless of traffic volume.
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.clear();
        std::mem::swap(out, &mut self.completions);
    }

    /// Number of requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.live_requests
    }

    /// The trace store (Jaeger analog).
    pub fn traces(&self) -> &TraceStore {
        &self.traces
    }

    /// Mutable trace store, for draining finished traces.
    pub fn traces_mut(&mut self) -> &mut TraceStore {
        &mut self.traces
    }

    /// End-to-end latency percentile over the trailing `k` metric windows.
    pub fn e2e_percentile(&self, k: usize, q: f64) -> Option<SimDuration> {
        self.e2e.percentile_trailing(self.now.as_micros(), k, q).map(SimDuration::from_micros)
    }

    /// Per-service latency percentile over the trailing `k` windows.
    pub fn service_percentile(&self, service: ServiceId, k: usize, q: f64) -> Option<SimDuration> {
        self.services[service.0 as usize]
            .latency
            .percentile_trailing(self.now.as_micros(), k, q)
            .map(SimDuration::from_micros)
    }

    /// CPU utilization of `service` over the trailing window of `dur`.
    pub fn service_utilization(&self, service: ServiceId, dur: SimDuration) -> Option<f64> {
        let to = self.now.as_micros();
        let from = to.saturating_sub(dur.as_micros());
        self.services[service.0 as usize].cpu.utilization(from, to)
    }

    /// Mean used millicores of `service` over the trailing window of `dur`.
    pub fn service_used_mc(&self, service: ServiceId, dur: SimDuration) -> f64 {
        let to = self.now.as_micros();
        let from = to.saturating_sub(dur.as_micros());
        self.services[service.0 as usize].cpu.used_millicores(from, to)
    }

    /// Arrival rate (req/s) perceived by `service` over the trailing `k` windows.
    pub fn service_arrival_rate(&self, service: ServiceId, k: usize) -> f64 {
        let at = self.now.as_micros().saturating_sub(1);
        self.services[service.0 as usize].arrivals.rate_trailing(at, k)
    }

    /// Injects a contention anomaly (§6): between `from` and `until`, every
    /// request handled by `service` costs `factor×` its normal CPU — the
    /// latency-spike signature of noisy neighbours / cache contention.
    pub fn inject_contention(
        &mut self,
        service: ServiceId,
        factor: f64,
        from: SimTime,
        until: SimTime,
    ) {
        assert!(factor >= 1.0, "contention can only slow work down");
        assert!(until > from);
        self.services[service.0 as usize].slowdowns.push((
            from.as_micros(),
            until.as_micros(),
            factor,
        ));
    }

    /// Injects a trace fault: between `from` and `until`, each span is
    /// dropped with probability `drop_prob` at completion time, so finished
    /// traces arrive truncated — the partial call graphs a lossy tracing
    /// pipeline delivers. Decisions draw from the seeded trace stream, so
    /// runs stay bit-reproducible; with no windows installed the stream is
    /// consumed exactly as in a fault-free run.
    pub fn inject_span_drop(&mut self, from: SimTime, until: SimTime, drop_prob: f64) {
        assert!(drop_prob > 0.0 && drop_prob <= 1.0, "drop_prob in (0, 1]");
        assert!(until > from);
        self.span_faults.push((from.as_micros(), until.as_micros(), drop_prob));
    }

    /// Front-end arrival rate (req/s) of `api` over the trailing `k` windows.
    ///
    /// This is the only workload signal GRAF's proactive controller consumes
    /// (§3.8): it is available the instant traffic changes at the front end,
    /// before any interior microservice has felt the change.
    pub fn api_arrival_rate(&self, api: ApiId, k: usize) -> f64 {
        // Query one microsecond back so a control tick landing exactly on a
        // window boundary reads k *complete* windows, not a fresh empty one.
        let at = self.now.as_micros().saturating_sub(1);
        self.api_arrivals[api.0 as usize].rate_trailing(at, k)
    }

    /// Number of frames queued at `service` waiting for a ready instance.
    pub fn service_pending(&self, service: ServiceId) -> usize {
        self.services[service.0 as usize].pending.len()
    }

    // ------------------------------------------------------------------
    // Shard-mode plumbing (driven by exec::ShardedWorld)
    // ------------------------------------------------------------------

    /// Turns this world into one shard of a fleet. Shard mode forbids client
    /// timeouts (a timeout teardown cannot reach frames living on other
    /// shards) and requires a nonzero return delay (cross-shard completions
    /// need transit time to fit the conservative lookahead window).
    pub(crate) fn shard_attach(&mut self, ctx: ShardCtx) {
        assert!(
            self.cfg.request_timeout_us.is_none(),
            "sharded execution requires request_timeout_us: None (timeouts cannot tear down \
             frames owned by other shards)"
        );
        assert!(
            self.cfg.return_us >= 1,
            "sharded execution requires return_us >= 1 (cross-shard completions need transit \
             time inside the lookahead window)"
        );
        self.shard = Some(Box::new(ctx));
    }

    /// Schedules every message of the shard inbox into the event queue.
    /// Called by the executor at the start of each window; delivery times
    /// are ≥ the window start by the lookahead contract, so the calendar
    /// queue's monotone cursor is never violated.
    pub(crate) fn shard_deliver_inbox(&mut self) {
        let Some(ctx) = self.shard.as_mut() else { return };
        if ctx.inbox.is_empty() {
            return;
        }
        // Take the inbox out so the loop can borrow the context (payload
        // slab) and the event queue simultaneously; the buffer goes back
        // afterwards, keeping its capacity.
        let mut inbox = std::mem::take(&mut ctx.inbox);
        for msg in inbox.drain(..) {
            match msg {
                ShardMsg::Start(m) => {
                    let ctx = self.shard.as_mut().expect("attached above");
                    let slot = match ctx.pool_free.pop() {
                        Some(s) => {
                            ctx.pool[s as usize] = m;
                            s
                        }
                        None => {
                            // Slab growth to the in-flight high-water mark.
                            ctx.pool.push(m);
                            (ctx.pool.len() - 1) as u32
                        }
                    };
                    self.queue.schedule(m.start_at, Event::RemoteStart { slot });
                }
                ShardMsg::Done { time, frame, generation } => {
                    self.queue.schedule(time, Event::ChildReturn { frame, generation });
                }
            }
        }
        self.shard.as_mut().expect("attached above").inbox = inbox;
    }

    /// Appends this shard's outboxes into its row of the mailbox matrix
    /// (`row[dst]` is the mailbox from this shard to shard `dst`). Called at
    /// the end of each window, before the exchange barrier; only this shard
    /// ever writes its row, so the locks are uncontended.
    pub(crate) fn shard_publish(&mut self, row: &[std::sync::Mutex<Vec<ShardMsg>>]) {
        let Some(ctx) = self.shard.as_mut() else { return };
        for (dst, out) in ctx.outbox.iter_mut().enumerate() {
            if !out.is_empty() {
                row[dst].lock().expect("mailbox lock").append(out);
            }
        }
    }

    /// Drains this shard's column of the mailbox matrix into the inbox, in
    /// ascending source-shard order — the deterministic merge order that
    /// makes message arrival independent of worker scheduling. Called after
    /// the exchange barrier.
    pub(crate) fn shard_collect(&mut self, mailboxes: &[Vec<std::sync::Mutex<Vec<ShardMsg>>>]) {
        let Some(ctx) = self.shard.as_mut() else { return };
        let me = ctx.index as usize;
        for row in mailboxes {
            let mut mb = row[me].lock().expect("mailbox lock");
            ctx.inbox.append(&mut mb);
        }
    }

    /// Number of pending events (includes undelivered inbox messages so the
    /// executor's quiescence check sees in-transit work).
    pub(crate) fn shard_backlog(&self) -> usize {
        self.queue.len() + self.shard.as_ref().map_or(0, |c| c.inbox.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ApiSpec, ChildMode, ServiceSpec};

    fn chain2(work_a: f64, work_b: f64) -> AppTopology {
        AppTopology::new(
            "chain2",
            vec![
                ServiceSpec::new("a", work_a, 500).cv(0.0),
                ServiceSpec::new("b", work_b, 500).cv(0.0),
            ],
            vec![ApiSpec::new(
                "get",
                CallNode::new(0).children_mode(ChildMode::Sequential, vec![CallNode::new(1)]),
            )],
        )
    }

    fn ready_world(topo: AppTopology, quota: f64) -> World {
        let n = topo.num_services();
        let mut w = World::new(topo, SimConfig::default(), 42);
        for s in 0..n {
            w.add_instances(ServiceId(s as u16), 1, quota, SimTime::ZERO);
        }
        w.run_until(SimTime(1)); // process InstanceReady events
        w
    }

    #[test]
    fn single_request_end_to_end_latency() {
        // Deterministic (cv = 0): a = 2 mc·ms, b = 4 mc·ms at 1000 mc quota
        // → 2 ms + 4 ms of work + 2 hops of 0.5 ms base = 7 ms.
        let mut w = ready_world(chain2(2.0, 4.0), 1000.0);
        w.inject(ApiId(0), SimTime::from_millis(1.0));
        w.run_until(SimTime::from_secs(1.0));
        let done = w.drain_completions();
        assert_eq!(done.len(), 1);
        let lat = done[0].latency_us();
        assert!((6_900..=7_100).contains(&lat), "latency {lat} us");
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn requests_queue_when_no_instance_ready() {
        let topo = chain2(1.0, 1.0);
        let mut w = World::new(topo, SimConfig::default(), 1);
        // Instance for 'a' becomes ready only at t = 2 s.
        w.add_instances(ServiceId(0), 1, 1000.0, SimTime::from_secs(2.0));
        w.add_instances(ServiceId(1), 1, 1000.0, SimTime::ZERO);
        w.inject(ApiId(0), SimTime::from_millis(10.0));
        w.run_until(SimTime::from_secs(1.0));
        assert_eq!(w.service_pending(ServiceId(0)), 1, "waiting for startup");
        assert_eq!(w.stats().completed, 0);
        w.run_until(SimTime::from_secs(3.0));
        assert_eq!(w.stats().completed, 1);
        // Latency includes the wait for instance readiness (~2 s).
        let done = w.drain_completions();
        assert!(done[0].latency_us() > 1_900_000);
    }

    #[test]
    fn parallel_children_take_max_not_sum() {
        // root -> (b ∥ c); b = 10 ms, c = 30 ms at 1000 mc. Parallel e2e ≈
        // root work (1 ms) + max(10, 30) + bases, far below the 40 ms sum.
        let topo = AppTopology::new(
            "par",
            vec![
                ServiceSpec::new("root", 1.0, 100).cv(0.0),
                ServiceSpec::new("b", 10.0, 100).cv(0.0),
                ServiceSpec::new("c", 30.0, 100).cv(0.0),
            ],
            vec![ApiSpec::new(
                "get",
                CallNode::new(0)
                    .children_mode(ChildMode::Parallel, vec![CallNode::new(1), CallNode::new(2)]),
            )],
        );
        let mut w = ready_world(topo, 1000.0);
        w.inject(ApiId(0), SimTime::from_millis(1.0));
        w.run_until(SimTime::from_secs(1.0));
        let done = w.drain_completions();
        assert_eq!(done.len(), 1);
        let lat_ms = done[0].latency_us() as f64 / 1000.0;
        assert!((31.0..36.0).contains(&lat_ms), "parallel latency {lat_ms} ms");
    }

    #[test]
    fn sequential_children_sum() {
        let topo = AppTopology::new(
            "seq",
            vec![
                ServiceSpec::new("root", 1.0, 100).cv(0.0),
                ServiceSpec::new("b", 10.0, 100).cv(0.0),
                ServiceSpec::new("c", 30.0, 100).cv(0.0),
            ],
            vec![ApiSpec::new(
                "get",
                CallNode::new(0)
                    .children_mode(ChildMode::Sequential, vec![CallNode::new(1), CallNode::new(2)]),
            )],
        );
        let mut w = ready_world(topo, 1000.0);
        w.inject(ApiId(0), SimTime::from_millis(1.0));
        w.run_until(SimTime::from_secs(1.0));
        let done = w.drain_completions();
        let lat_ms = done[0].latency_us() as f64 / 1000.0;
        assert!((41.0..46.0).contains(&lat_ms), "sequential latency {lat_ms} ms");
    }

    #[test]
    fn repeat_calls_execute_repeatedly() {
        let topo = AppTopology::new(
            "rep",
            vec![ServiceSpec::new("root", 1.0, 0).cv(0.0), ServiceSpec::new("b", 5.0, 0).cv(0.0)],
            vec![ApiSpec::new(
                "get",
                CallNode::new(0)
                    .children_mode(ChildMode::Sequential, vec![CallNode::new(1).repeat(3)]),
            )],
        );
        let mut w = ready_world(topo, 1000.0);
        let cfg = SimConfig { trace_sample: 1.0, ..SimConfig::default() };
        assert_eq!(cfg.trace_sample, 1.0);
        w.inject(ApiId(0), SimTime::from_millis(1.0));
        w.run_until(SimTime::from_secs(1.0));
        let traces = w.traces_mut().drain_finished();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].calls_to(1), 3, "service b ran 3 spans");
        // Sequential repeats: 1 + 3×5 = 16 ms of work.
        let done = w.drain_completions();
        let lat_ms = done[0].latency_us() as f64 / 1000.0;
        assert!((15.5..17.0).contains(&lat_ms), "latency {lat_ms}");
    }

    #[test]
    fn more_quota_reduces_latency_under_load() {
        // Open-loop load at 200 qps on a 5 mc·ms service: offered load
        // 1000 mc. Quota 1250 vs 2500 → p99 must drop.
        fn p99_at(quota: f64) -> u64 {
            let topo = AppTopology::new(
                "one",
                vec![ServiceSpec::new("s", 5.0, 100)],
                vec![ApiSpec::new("get", CallNode::new(0))],
            );
            let mut w = World::new(topo, SimConfig::default(), 9);
            w.add_instances(ServiceId(0), 1, quota, SimTime::ZERO);
            for i in 0..2_000u64 {
                w.inject(ApiId(0), SimTime(i * 5_000)); // 200 qps for 10 s
            }
            w.run_until(SimTime::from_secs(20.0));
            let mut lats: Vec<u64> = w.drain_completions().iter().map(|c| c.latency_us()).collect();
            lats.sort_unstable();
            lats[(lats.len() as f64 * 0.99) as usize - 1]
        }
        let lo = p99_at(1250.0);
        let hi = p99_at(2500.0);
        assert!(hi < lo, "p99 at 2500mc ({hi}) must beat 1250mc ({lo})");
    }

    #[test]
    fn utilization_tracks_offered_load() {
        let topo = AppTopology::new(
            "one",
            vec![ServiceSpec::new("s", 5.0, 100).cv(0.0)],
            vec![ApiSpec::new("get", CallNode::new(0))],
        );
        let mut w = World::new(topo, SimConfig::default(), 10);
        w.add_instances(ServiceId(0), 1, 2000.0, SimTime::ZERO);
        // 100 qps × 5 mc·ms = 500 mc used of 2000 → utilization ≈ 0.25.
        for i in 0..1_000u64 {
            w.inject(ApiId(0), SimTime(i * 10_000));
        }
        w.run_until(SimTime::from_secs(10.0));
        let u = w.service_utilization(ServiceId(0), SimDuration::from_secs(9.0)).unwrap();
        assert!((0.2..0.3).contains(&u), "utilization {u}");
    }

    #[test]
    fn removing_instances_prefers_starting_then_drains() {
        let topo = chain2(1.0, 1.0);
        let mut w = World::new(topo, SimConfig::default(), 3);
        w.add_instances(ServiceId(0), 2, 500.0, SimTime::ZERO);
        w.run_until(SimTime(10));
        w.add_instances(ServiceId(0), 2, 500.0, SimTime::from_secs(10.0)); // still starting
        let (starting, ready, _) = w.instance_counts(ServiceId(0));
        assert_eq!((starting, ready), (2, 2));
        let removed = w.remove_instances(ServiceId(0), 3);
        assert_eq!(removed, 3);
        let (starting, ready, draining) = w.instance_counts(ServiceId(0));
        assert_eq!(starting, 0, "starting cancelled first");
        assert_eq!(ready + draining, 1);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        fn run(seed: u64) -> Vec<u64> {
            let mut w = ready_world(chain2(2.0, 3.0), 800.0);
            let _ = seed;
            let mut rng = DetRng::new(77);
            let mut t = SimTime::ZERO;
            for _ in 0..200 {
                t += SimDuration::from_micros((rng.exp(5_000.0)) as u64 + 1);
                w.inject(ApiId(0), t);
            }
            w.run_until(SimTime::from_secs(10.0));
            w.drain_completions().iter().map(|c| c.latency_us()).collect()
        }
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn traces_have_correct_edges() {
        let mut w = ready_world(chain2(1.0, 1.0), 1000.0);
        w.inject(ApiId(0), SimTime::from_millis(1.0));
        w.run_until(SimTime::from_secs(1.0));
        let traces = w.traces_mut().drain_finished();
        assert_eq!(traces.len(), 1);
        let mut cs = graf_trace::CallStats::new();
        cs.observe_all(traces.iter());
        let edges = cs.edges();
        assert_eq!(edges.len(), 1);
        assert_eq!((edges[0].parent, edges[0].child), (0, 1));
    }

    #[test]
    fn timeouts_abandon_requests_and_free_capacity() {
        // A starved service (20 mc) cannot finish 5 core·ms requests before
        // the 1 s client timeout; abandoned jobs must leave the instance so
        // later requests start fresh.
        let topo = AppTopology::new(
            "slow",
            vec![ServiceSpec::new("s", 5.0, 0).cv(0.0)],
            vec![ApiSpec::new("get", CallNode::new(0))],
        );
        let cfg = SimConfig { request_timeout_us: Some(1_000_000), ..SimConfig::default() };
        let mut w = World::new(topo, cfg, 8);
        w.add_instances(ServiceId(0), 1, 20.0, SimTime::ZERO);
        for i in 0..10u64 {
            w.inject(ApiId(0), SimTime(i * 1_000));
        }
        w.run_until(SimTime::from_secs(5.0));
        let done = w.drain_completions();
        assert_eq!(done.len(), 10);
        assert!(done.iter().all(|c| c.timed_out), "all starved requests time out");
        assert!(done.iter().all(|c| c.latency_us() == 1_000_000), "latency capped");
        assert_eq!(w.stats().timeouts, 10);
        assert_eq!(w.in_flight(), 0, "metadata cleaned up");
        // The instance is empty again: a fresh feasible request completes.
        w.add_instances(ServiceId(0), 1, 1000.0, w.now());
        w.inject(ApiId(0), w.now());
        w.run_until(SimTime(w.now().0 + 500_000));
        let done = w.drain_completions();
        assert_eq!(done.len(), 1);
        assert!(!done[0].timed_out, "fast request completes normally");
    }

    #[test]
    fn completed_requests_do_not_time_out() {
        let topo = AppTopology::new(
            "fast",
            vec![ServiceSpec::new("s", 1.0, 0).cv(0.0)],
            vec![ApiSpec::new("get", CallNode::new(0))],
        );
        let cfg = SimConfig { request_timeout_us: Some(1_000_000), ..SimConfig::default() };
        let mut w = World::new(topo, cfg, 9);
        w.add_instances(ServiceId(0), 1, 1000.0, SimTime::ZERO);
        w.inject(ApiId(0), SimTime(0));
        w.run_until(SimTime::from_secs(3.0)); // run past the timeout event
        let done = w.drain_completions();
        assert_eq!(done.len(), 1);
        assert!(!done[0].timed_out);
        assert_eq!(w.stats().timeouts, 0);
    }

    #[test]
    fn contention_injection_inflates_latency_within_its_window() {
        let topo = AppTopology::new(
            "one",
            vec![ServiceSpec::new("s", 1.0, 0).cv(0.0)],
            vec![ApiSpec::new("get", CallNode::new(0))],
        );
        let mut w = World::new(topo, SimConfig::default(), 12);
        w.add_instances(ServiceId(0), 1, 1000.0, SimTime::ZERO);
        // Contention 4x during [2s, 4s).
        w.inject_contention(ServiceId(0), 4.0, SimTime::from_secs(2.0), SimTime::from_secs(4.0));
        for i in 0..60u64 {
            w.inject(ApiId(0), SimTime(i * 100_000)); // 10 qps for 6 s
        }
        w.run_until(SimTime::from_secs(8.0));
        let done = w.drain_completions();
        let lat_at = |from: f64, to: f64| -> f64 {
            let v: Vec<f64> = done
                .iter()
                .filter(|c| {
                    let t = c.start.as_secs_f64();
                    t >= from && t < to
                })
                .map(|c| c.latency_us() as f64)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let before = lat_at(0.0, 1.9);
        let during = lat_at(2.0, 3.9);
        let after = lat_at(4.1, 6.0);
        assert!(during > before * 2.5, "contention inflates latency: {before} → {during}");
        assert!(after < during / 2.0, "latency recovers after the window: {during} → {after}");
    }

    #[test]
    fn vertical_scaling_takes_effect_mid_flight() {
        let topo = AppTopology::new(
            "one",
            vec![ServiceSpec::new("s", 10.0, 0).cv(0.0)],
            vec![ApiSpec::new("get", CallNode::new(0))],
        );
        let mut w = World::new(topo, SimConfig::default(), 13);
        w.add_instances(ServiceId(0), 1, 100.0, SimTime::ZERO);
        // A 10 core·ms job at 100 mc would take 100 ms; halfway through,
        // resize to 1000 mc and it finishes much sooner.
        w.inject(ApiId(0), SimTime(0));
        w.run_until(SimTime::from_millis(50.0));
        assert_eq!(w.stats().completed, 0);
        w.resize_instances(ServiceId(0), 1000.0);
        w.run_until(SimTime::from_millis(60.0));
        let done = w.drain_completions();
        assert_eq!(done.len(), 1, "resize accelerated the in-flight job");
        let lat = done[0].latency_us();
        assert!((54_000..58_000).contains(&lat), "≈50ms at 100mc + 5ms at 1000mc: {lat}");
        assert!((w.ready_quota_mc(ServiceId(0)) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn trace_sampling_probability_is_respected() {
        let topo = AppTopology::new(
            "one",
            vec![ServiceSpec::new("s", 0.5, 0).cv(0.0)],
            vec![ApiSpec::new("get", CallNode::new(0))],
        );
        let cfg = SimConfig { trace_sample: 0.3, ..SimConfig::default() };
        let mut w = World::new(topo, cfg, 14);
        w.add_instances(ServiceId(0), 1, 1000.0, SimTime::ZERO);
        for i in 0..1_000u64 {
            w.inject(ApiId(0), SimTime(i * 2_000));
        }
        w.run_until(SimTime::from_secs(5.0));
        let traces = w.traces_mut().drain_finished().len() as f64;
        assert!((traces / 1000.0 - 0.3).abs() < 0.06, "≈30% of requests traced, got {traces}");
        assert_eq!(w.stats().completed, 1000, "sampling never drops requests");
    }

    #[test]
    fn draining_instance_finishes_jobs_then_disappears() {
        let topo = AppTopology::new(
            "one",
            vec![ServiceSpec::new("s", 50.0, 0).cv(0.0)],
            vec![ApiSpec::new("get", CallNode::new(0))],
        );
        let mut w = World::new(topo, SimConfig::default(), 15);
        w.add_instances(ServiceId(0), 2, 1000.0, SimTime::ZERO);
        w.inject(ApiId(0), SimTime(0));
        w.inject(ApiId(0), SimTime(1));
        w.run_until(SimTime::from_millis(10.0)); // both in flight (50ms each)
        let removed = w.remove_instances(ServiceId(0), 2);
        assert_eq!(removed, 2);
        let (_, ready, draining) = w.instance_counts(ServiceId(0));
        assert_eq!(ready, 0);
        assert!(draining >= 1, "jobs keep their instance until done");
        w.run_until(SimTime::from_secs(1.0));
        assert_eq!(w.stats().completed, 2, "in-flight work still completes");
        let (s, r, d) = w.instance_counts(ServiceId(0));
        assert_eq!((s, r, d), (0, 0, 0), "drained instances are deleted");
    }

    #[test]
    fn work_is_conserved_under_load() {
        // Total CPU used ≈ requests × mean work when the system drains fully.
        let topo = AppTopology::new(
            "one",
            vec![ServiceSpec::new("s", 4.0, 0).cv(0.0)],
            vec![ApiSpec::new("get", CallNode::new(0))],
        );
        let mut w = World::new(topo, SimConfig::default(), 5);
        w.add_instances(ServiceId(0), 2, 1000.0, SimTime::ZERO);
        for i in 0..500u64 {
            w.inject(ApiId(0), SimTime(i * 2_000));
        }
        w.run_until(SimTime::from_secs(5.0));
        assert_eq!(w.stats().completed, 500);
        let used_total = w.services[0].cpu.used_in(0, w.now().as_micros());
        let expected = 500.0 * 4.0 * 1_000_000.0; // mc·us (4 core·ms each)
        let err = (used_total - expected).abs() / expected;
        assert!(err < 0.01, "used {used_total} vs expected {expected}");
    }
}
