//! Deterministic parallel simulation: the sharded executor.
//!
//! [`ShardedWorld`] runs one [`crate::world::World`] per shard of a
//! [`Partition`] under **conservative synchronization**: simulated time
//! advances in windows of the partition's lookahead `L`, every shard
//! processes its own events within the window, and cross-shard messages —
//! whose delivery delay is ≥ `L` by construction — are exchanged at a
//! barrier between windows, always landing in a *future* window of the
//! receiving shard. Completions, metrics and traces from all shards are
//! merged in a deterministic order afterwards.
//!
//! The whole pipeline is a pure function of `(topology, config, seed)`:
//! shard layout and seeds come from [`Partition`]/[`shard_seed`], message
//! order is indexed by source shard (never by worker), and the merge is
//! ordered — so results are **bitwise identical for any thread count**,
//! including 1. DESIGN.md §14 gives the full invariance argument and the
//! checklist for adding new cross-shard interactions.
//!
//! # Example
//!
//! ```
//! use graf_sim::exec::ShardedWorld;
//! use graf_sim::time::SimTime;
//! use graf_sim::topology::{ApiSpec, AppTopology, CallNode, ServiceSpec};
//! use graf_sim::world::SimConfig;
//!
//! let topo = AppTopology::new(
//!     "demo",
//!     vec![ServiceSpec::new("front", 1.0, 500), ServiceSpec::new("back", 2.0, 500)],
//!     vec![ApiSpec::new("get", CallNode::new(0).call(CallNode::new(1)))],
//! );
//! // Shard mode needs no client timeout and a nonzero return delay.
//! let cfg = SimConfig { request_timeout_us: None, return_us: 250, ..SimConfig::default() };
//! let mut w = ShardedWorld::new(topo, cfg, 7, 2);
//! w.add_instances(0.into(), 1, 1000.0, SimTime::ZERO);
//! w.add_instances(1.into(), 1, 1000.0, SimTime::ZERO);
//! for i in 0..10u64 {
//!     w.inject(0.into(), SimTime::from_millis(5.0 * i as f64));
//! }
//! w.run_until(SimTime::from_secs(1.0));
//! assert_eq!(w.stats().completed, 10);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use graf_metrics::WindowedLatency;
use graf_trace::{Trace, TraceId};

use crate::shard::{
    shard_seed, Partition, ShardCtx, ShardMsg, NO_CROSS_EDGES, REMOTE_FRAGMENT_API,
};
use crate::station::InstanceId;
use crate::time::{SimDuration, SimTime};
use crate::topology::{ApiId, AppTopology, ServiceId};
use crate::world::{Completion, SimConfig, World, WorldStats};

/// Upper bound on shard count: beyond this, services are grouped
/// ([`Partition::grouped`]) — more shards than cores only adds barrier and
/// mailbox overhead, never parallelism.
const MAX_SHARDS: usize = 32;

/// Merges per-shard completion streams into `out`, ordered by completion
/// time with ties broken by stream index — the executor's deterministic
/// reduction order (each input stream is already time-ordered because a
/// shard emits completions as its clock advances). The input streams are
/// drained (left empty, capacity kept).
///
/// ```
/// use graf_sim::exec::merge_completions;
/// use graf_sim::frame::RequestId;
/// use graf_sim::time::SimTime;
/// use graf_sim::world::Completion;
///
/// let c = |req: u64, end: u64| Completion {
///     request: RequestId(req),
///     api: 0.into(),
///     start: SimTime(0),
///     end: SimTime(end),
///     timed_out: false,
/// };
/// let mut streams = vec![vec![c(0, 10), c(1, 30)], vec![c(2, 10), c(3, 20)]];
/// let mut out = Vec::new();
/// merge_completions(&mut streams, &mut out);
/// // Tie at t=10 resolves to the lower stream index: 0 before 2.
/// let order: Vec<u64> = out.iter().map(|c| c.request.0).collect();
/// assert_eq!(order, vec![0, 2, 3, 1]);
/// assert!(streams.iter().all(|s| s.is_empty()), "inputs are drained");
/// ```
pub fn merge_completions(streams: &mut [Vec<Completion>], out: &mut Vec<Completion>) {
    let k = streams.len();
    let mut cursors = vec![0usize; k];
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (i, s) in streams.iter().enumerate() {
            if cursors[i] < s.len() {
                let end = s[cursors[i]].end.0;
                // Strict `<` keeps the lowest stream index on ties.
                if best.is_none_or(|(be, _)| end < be) {
                    best = Some((end, i));
                }
            }
        }
        let Some((_, i)) = best else { break };
        out.push(streams[i][cursors[i]]);
        cursors[i] += 1;
    }
    for s in streams.iter_mut() {
        s.clear();
    }
}

/// Order-sensitive FNV-1a fingerprint of a completion stream. Two runs with
/// bitwise-identical merged output produce the same value; the determinism
/// tests and the `sim-identity` CI gate compare these across thread counts.
pub fn fingerprint_completions(completions: &[Completion]) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(0x100000001b3)
    }
    let mut h: u64 = 0xcbf29ce484222325;
    for c in completions {
        h = mix(h, c.request.0);
        h = mix(h, c.api.0 as u64);
        h = mix(h, c.start.0);
        h = mix(h, c.end.0);
        h = mix(h, c.timed_out as u64);
    }
    h
}

/// Order-sensitive FNV-1a fingerprint of merged traces (ids, apis and every
/// span's coordinates). Companion to [`fingerprint_completions`] for the
/// trace side of the bit-identity gates.
pub fn fingerprint_traces(traces: &[Trace]) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(0x100000001b3)
    }
    let mut h: u64 = 0xcbf29ce484222325;
    for t in traces {
        h = mix(h, t.id.0);
        h = mix(h, t.api as u64);
        for s in &t.spans {
            h = mix(h, s.span_id.0 as u64);
            h = mix(h, s.parent.map_or(u64::MAX, |p| p.0 as u64));
            h = mix(h, s.service as u64);
            h = mix(h, s.start_us);
            h = mix(h, s.end_us);
        }
    }
    h
}

/// A sense-reversing spin-then-yield barrier over std atomics.
///
/// `std::sync::Barrier` parks threads through a mutex+condvar; at the
/// executor's rate (two waits per lookahead window, hundreds of thousands
/// per simulated minute) wake-up latency would dominate the windows
/// themselves. Shard workers instead spin briefly — they have nothing else
/// to do, and windows are microseconds apart — then fall back to
/// `yield_now` so oversubscribed machines (more workers than cores) degrade
/// to context-switch cost per window instead of burning whole scheduler
/// timeslices spinning at each other. A worker that panics poisons the
/// barrier so its siblings panic too instead of waiting forever.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        Self {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Blocks until all `n` workers have called `wait` for this generation.
    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Release);
            self.generation.store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if self.poisoned.load(Ordering::Acquire) {
                    panic!("a sibling shard worker panicked");
                }
                if spins < 64 {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Poisons the barrier if the owning worker unwinds, releasing siblings
/// from their spin loops (they panic instead of hanging).
struct PoisonOnPanic<'a>(&'a SpinBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poisoned.store(true, Ordering::Release);
        }
    }
}

/// The sharded simulation: per-shard [`World`]s advancing in lookahead
/// windows, with deterministic cross-shard messaging and ordered merges.
///
/// The public surface mirrors [`World`] — inject, run, scale capacity,
/// observe — with calls routed to the shard owning the relevant service.
/// Differences from serial mode:
///
/// * `request_timeout_us` must be `None` and `return_us` ≥ 1 (asserted at
///   construction; see [`crate::world::SimConfig::return_us`]).
/// * Request ids are tagged with the owning shard in the top 16 bits, so
///   they differ from (but are as unique as) serial ids.
/// * [`ShardedWorld::in_flight`] counts remote-subtree proxy slots along
///   with real requests; it still reaches 0 exactly when everything drains.
/// * Merged trace span order is deterministic but differs from the serial
///   completion order (fragments concatenate in arrival order).
pub struct ShardedWorld {
    shards: Vec<World>,
    partition: Partition,
    threads: usize,
    /// `mailboxes[src][dst]`: messages from shard `src` to shard `dst`,
    /// written by `src` before the window barrier, drained by `dst` after
    /// it. Each cell has exactly one writer and one reader per window,
    /// phase-separated by the barrier, so the locks never contend.
    mailboxes: Vec<Vec<Mutex<Vec<ShardMsg>>>>,
    /// Shard owning each API's root service (arrivals route here).
    api_root_shard: Vec<usize>,
    now: SimTime,
    /// Coordinator-level end-to-end latency windows, fed by the ordered
    /// completion merge (per-shard `e2e` surfaces only see local roots).
    e2e: WindowedLatency,
    completions: Vec<Completion>,
    /// Per-shard drain buffers, recycled every merge.
    shard_drain: Vec<Vec<Completion>>,
    /// Trace fragments awaiting their group's root fragment, keyed by trace
    /// id. A `BTreeMap` so emission order is deterministic (ascending id),
    /// never hash order.
    pending_traces: BTreeMap<u64, Vec<Trace>>,
    /// Fully merged traces, ready to drain.
    traces: Vec<Trace>,
    /// Shard event total at the last observation flush.
    last_events: u64,
    obs: graf_obs::Obs,
    prof: graf_prof::Prof,
}

impl ShardedWorld {
    /// Creates a sharded world for `topo` with `threads` workers.
    ///
    /// The partition is one shard per service (grouped down to
    /// `MAX_SHARDS` for larger topologies) — a pure function of the
    /// topology, so `threads` affects wall-clock only, never results.
    /// Shard `i` seeds its world with [`shard_seed`]`(seed, key(i))`.
    ///
    /// # Panics
    /// Panics when `threads == 0`, when the config keeps a client timeout
    /// or a zero `return_us`, or when a cross-shard callee has `base_us ==
    /// 0` (the conservative lookahead would collapse).
    pub fn new(topo: AppTopology, cfg: SimConfig, seed: u64, threads: usize) -> Self {
        assert!(threads >= 1, "threads must be >= 1");
        assert!(
            cfg.request_timeout_us.is_none(),
            "sharded execution requires request_timeout_us: None"
        );
        assert!(cfg.return_us >= 1, "sharded execution requires return_us >= 1");
        let partition = if topo.num_services() <= MAX_SHARDS {
            Partition::per_service(&topo, cfg.return_us)
        } else {
            Partition::grouped(&topo, MAX_SHARDS, cfg.return_us)
        };
        let lookahead = partition.lookahead_us();
        assert!(
            lookahead >= 1,
            "conservative lookahead collapsed to 0: every cross-shard callee needs base_us >= 1"
        );
        let n = partition.num_shards();
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let mut w = World::new(topo.clone(), cfg.clone(), shard_seed(seed, partition.key(i)));
            w.shard_attach(ShardCtx::new(i as u32, partition.owners().to_vec(), n));
            shards.push(w);
        }
        let mailboxes = (0..n).map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect()).collect();
        let api_root_shard = topo.apis.iter().map(|a| partition.owner(a.tree.service)).collect();
        let e2e = WindowedLatency::new(cfg.window_us, cfg.retain_windows);
        Self {
            shards,
            partition,
            threads,
            mailboxes,
            api_root_shard,
            now: SimTime::ZERO,
            e2e,
            completions: Vec::new(),
            shard_drain: (0..n).map(|_| Vec::new()).collect(),
            pending_traces: BTreeMap::new(),
            traces: Vec::new(),
            last_events: 0,
            obs: graf_obs::Obs::disabled(),
            prof: graf_prof::Prof::disabled(),
        }
    }

    /// The partition driving this fleet.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Configured worker count (wall-clock only; results are invariant).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The application topology.
    pub fn topology(&self) -> &AppTopology {
        self.shards[0].topology()
    }

    /// The simulation config.
    pub fn config(&self) -> &SimConfig {
        self.shards[0].config()
    }

    /// Attaches a telemetry handle: the coordinator reports the summed
    /// processed-event count and queue depth after each run, exactly like
    /// the serial world's surface.
    pub fn set_obs(&mut self, obs: graf_obs::Obs) {
        self.obs = obs;
    }

    /// Attaches a profiler handle. The coordinator attributes wall time to
    /// `sim.exec.windows` (the parallel window loop) and `sim.exec.merge`
    /// (the ordered reduction); per-shard worlds stay unprofiled — their
    /// handles would race on the shared profiler from worker threads.
    pub fn set_prof(&mut self, prof: graf_prof::Prof) {
        self.prof = prof;
    }

    /// Aggregate counters, summed over shards. `injected`/`completed` count
    /// real requests only (remote-subtree proxies contribute no request
    /// statistics); `events` includes the remote-start and child-return
    /// events that exist only in shard mode.
    pub fn stats(&self) -> WorldStats {
        let mut total = WorldStats::default();
        for w in &self.shards {
            let s = w.stats();
            total.injected += s.injected;
            total.completed += s.completed;
            total.spans += s.spans;
            total.spans_dropped += s.spans_dropped;
            total.timeouts += s.timeouts;
            total.events += s.events;
        }
        total
    }

    /// Requests in flight, including remote-subtree proxy slots (one per
    /// cross-shard call currently executing). Reaches 0 exactly when all
    /// work and all in-transit messages have drained.
    pub fn in_flight(&self) -> usize {
        self.shards.iter().map(|w| w.in_flight()).sum()
    }

    /// Schedules one request of `api` to arrive at `t` on the shard owning
    /// the API's root service.
    pub fn inject(&mut self, api: ApiId, t: SimTime) {
        self.shards[self.api_root_shard[api.0 as usize]].inject(api, t);
    }

    /// Adds `n` instances to `service` on its owning shard (see
    /// [`World::add_instances`]). Returned ids are scoped to that shard.
    pub fn add_instances(
        &mut self,
        service: ServiceId,
        n: usize,
        quota_mc: f64,
        ready_at: SimTime,
    ) -> Vec<InstanceId> {
        self.shards[self.partition.owner(service)].add_instances(service, n, quota_mc, ready_at)
    }

    /// Removes up to `n` instances of `service` (see
    /// [`World::remove_instances`]).
    pub fn remove_instances(&mut self, service: ServiceId, n: usize) -> usize {
        self.shards[self.partition.owner(service)].remove_instances(service, n)
    }

    /// Vertically rescales `service`'s ready instances (see
    /// [`World::resize_instances`]).
    pub fn resize_instances(&mut self, service: ServiceId, quota_mc: f64) {
        self.shards[self.partition.owner(service)].resize_instances(service, quota_mc)
    }

    /// Instance counts of `service`: `(starting, ready, draining)`.
    pub fn instance_counts(&self, service: ServiceId) -> (usize, usize, usize) {
        self.shards[self.partition.owner(service)].instance_counts(service)
    }

    /// Total ready quota of `service` in millicores.
    pub fn ready_quota_mc(&self, service: ServiceId) -> f64 {
        self.shards[self.partition.owner(service)].ready_quota_mc(service)
    }

    /// End-to-end latency percentile over the trailing `k` windows of the
    /// *merged* completion stream.
    pub fn e2e_percentile(&self, k: usize, q: f64) -> Option<SimDuration> {
        self.e2e.percentile_trailing(self.now.as_micros(), k, q).map(SimDuration::from_micros)
    }

    /// Per-service latency percentile (from the owning shard; per-service
    /// surfaces live wholly on one shard and match serial bit-for-bit).
    pub fn service_percentile(&self, service: ServiceId, k: usize, q: f64) -> Option<SimDuration> {
        self.shards[self.partition.owner(service)].service_percentile(service, k, q)
    }

    /// CPU utilization of `service` over the trailing window of `dur`.
    pub fn service_utilization(&self, service: ServiceId, dur: SimDuration) -> Option<f64> {
        self.shards[self.partition.owner(service)].service_utilization(service, dur)
    }

    /// Mean used millicores of `service` over the trailing window of `dur`.
    pub fn service_used_mc(&self, service: ServiceId, dur: SimDuration) -> f64 {
        self.shards[self.partition.owner(service)].service_used_mc(service, dur)
    }

    /// Arrival rate (req/s) perceived by `service` over the trailing `k`
    /// windows.
    pub fn service_arrival_rate(&self, service: ServiceId, k: usize) -> f64 {
        self.shards[self.partition.owner(service)].service_arrival_rate(service, k)
    }

    /// Front-end arrival rate (req/s) of `api` over the trailing `k`
    /// windows.
    pub fn api_arrival_rate(&self, api: ApiId, k: usize) -> f64 {
        self.shards[self.api_root_shard[api.0 as usize]].api_arrival_rate(api, k)
    }

    /// Number of frames queued at `service` waiting for a ready instance.
    pub fn service_pending(&self, service: ServiceId) -> usize {
        self.shards[self.partition.owner(service)].service_pending(service)
    }

    /// Injects a contention anomaly on `service`'s shard (see
    /// [`World::inject_contention`]).
    pub fn inject_contention(
        &mut self,
        service: ServiceId,
        factor: f64,
        from: SimTime,
        until: SimTime,
    ) {
        self.shards[self.partition.owner(service)].inject_contention(service, factor, from, until)
    }

    /// Installs a span-drop fault window on **every** shard (spans complete
    /// wherever their frame runs; see [`World::inject_span_drop`]). Each
    /// shard draws drop decisions from its own seeded trace stream, so the
    /// fault stays bit-reproducible and thread-count invariant.
    pub fn inject_span_drop(&mut self, from: SimTime, until: SimTime, drop_prob: f64) {
        for w in &mut self.shards {
            w.inject_span_drop(from, until, drop_prob);
        }
    }

    /// Completed requests since the last drain, in merged order.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Moves completed requests since the last drain into `out` (cleared
    /// first), swapping buffers like [`World::drain_completions_into`].
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.clear();
        std::mem::swap(out, &mut self.completions);
    }

    /// Fully merged traces since the last drain, ascending by trace id
    /// within each merge round. A trace is emitted once its root fragment
    /// completes — at which point the conservative-window contract
    /// guarantees every remote fragment has already arrived (DESIGN.md §14).
    pub fn drain_traces(&mut self) -> Vec<Trace> {
        std::mem::take(&mut self.traces)
    }

    /// Processes all events up to and including `t`, then sets now = `t`,
    /// merges completions/metrics/traces, and reports telemetry.
    ///
    /// Time advances in lookahead windows; with more than one thread the
    /// shards of each window run on scoped workers (shard `i` on worker
    /// `i % threads` — any assignment works, results are invariant).
    pub fn run_until(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot run backwards");
        let _exec_scope = self.prof.enter("sim.exec");
        let lookahead = self.partition.lookahead_us();
        let workers = self.threads.min(self.shards.len()).max(1);
        {
            let _windows = self.prof.enter("sim.exec.windows");
            self.prof.work(1);
            if workers == 1 {
                self.run_windows_inline(t, lookahead);
            } else {
                self.run_windows_parallel(t, lookahead, workers);
            }
        }
        self.now = t;
        {
            let _merge = self.prof.enter("sim.exec.merge");
            self.prof.work(1);
            self.merge_outputs();
        }
        if self.obs.is_enabled() {
            let events: u64 = self.shards.iter().map(|w| w.stats().events).sum();
            let delta = events - self.last_events;
            self.last_events = events;
            if delta > 0 {
                self.obs.counter_add("graf.sim.events", &[], delta);
            }
            let depth: usize = self.shards.iter().map(|w| w.shard_backlog()).sum();
            self.obs.gauge_set("graf.sim.queue_depth", &[], depth as f64);
        }
    }

    /// Runs windows until in-flight work and in-transit messages drain, or
    /// `limit` is reached (analog of [`World::run_to_quiescence`]).
    pub fn run_to_quiescence(&mut self, limit: SimTime) {
        while self.now < limit {
            let backlog: usize = self.shards.iter().map(|w| w.shard_backlog()).sum();
            if backlog == 0 {
                break;
            }
            let step = match self.partition.lookahead_us() {
                NO_CROSS_EDGES => limit.0.saturating_sub(self.now.0),
                l => l.saturating_mul(4),
            };
            self.run_until(SimTime(self.now.0.saturating_add(step.max(1)).min(limit.0)));
        }
    }

    /// Single-worker window loop: same schedule as the parallel one, no
    /// threads, no barriers. Bit-identical by construction — both loops
    /// execute the identical per-shard sequence of (deliver, run, publish,
    /// collect) steps in the identical order per shard.
    fn run_windows_inline(&mut self, t: SimTime, lookahead: u64) {
        let mut win = self.now.0;
        while win < t.0 {
            let w_end = SimTime(win.saturating_add(lookahead).min(t.0));
            for (i, w) in self.shards.iter_mut().enumerate() {
                w.shard_deliver_inbox();
                w.run_until(w_end);
                w.shard_publish(&self.mailboxes[i]);
            }
            for w in self.shards.iter_mut() {
                w.shard_collect(&self.mailboxes);
            }
            win = w_end.0;
        }
    }

    /// Multi-worker window loop. Two barriers per window: one between
    /// publish (each shard writes its own mailbox row) and collect (each
    /// shard drains its own column), one before the next window begins so
    /// no shard can start scheduling window `k+1` messages while another
    /// still collects window `k`'s — merging the two phases could otherwise
    /// interleave queue sequence numbers nondeterministically when
    /// deliveries from adjacent windows share a timestamp.
    fn run_windows_parallel(&mut self, t: SimTime, lookahead: u64, workers: usize) {
        let start = self.now.0;
        let end = t.0;
        let barrier = SpinBarrier::new(workers);
        let mailboxes = &self.mailboxes;
        // Deal shards round-robin onto workers. The assignment affects which
        // thread touches which world — nothing else: every loop below is
        // indexed by shard, and the mailbox phases are barrier-separated.
        let mut assignment: Vec<Vec<(usize, &mut World)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, w) in self.shards.iter_mut().enumerate() {
            assignment[i % workers].push((i, w));
        }
        std::thread::scope(|scope| {
            for mut mine in assignment {
                let barrier = &barrier;
                scope.spawn(move || {
                    let _poison = PoisonOnPanic(barrier);
                    let mut win = start;
                    while win < end {
                        let w_end = SimTime(win.saturating_add(lookahead).min(end));
                        for (i, w) in mine.iter_mut() {
                            w.shard_deliver_inbox();
                            w.run_until(w_end);
                            w.shard_publish(&mailboxes[*i]);
                        }
                        barrier.wait();
                        for (_, w) in mine.iter_mut() {
                            w.shard_collect(mailboxes);
                        }
                        barrier.wait();
                        win = w_end.0;
                    }
                });
            }
        });
    }

    /// The ordered reduction after a run: merge per-shard completions by
    /// `(end time, shard index)` into the coordinator stream and latency
    /// windows, then assemble cross-shard trace fragments into whole traces.
    fn merge_outputs(&mut self) {
        for (i, w) in self.shards.iter_mut().enumerate() {
            w.drain_completions_into(&mut self.shard_drain[i]);
        }
        let merged_from = self.completions.len();
        merge_completions(&mut self.shard_drain, &mut self.completions);
        for c in &self.completions[merged_from..] {
            self.e2e.record(c.end.as_micros(), c.latency_us());
        }
        // Collect finished trace fragments shard-major (deterministic), then
        // emit every group whose root fragment has arrived. Remote fragments
        // are marked by the sentinel api; the root fragment carries the real
        // one. Groups without a root stay pending — their root is still
        // running on some shard.
        let mut any = false;
        for w in self.shards.iter_mut() {
            for frag in w.traces_mut().drain_finished() {
                self.pending_traces.entry(frag.id.0).or_default().push(frag);
                any = true;
            }
        }
        if !any {
            return;
        }
        let ready: Vec<u64> = self
            .pending_traces
            .iter()
            .filter(|(_, frags)| frags.iter().any(|f| f.api != REMOTE_FRAGMENT_API))
            .map(|(&id, _)| id)
            .collect();
        for id in ready {
            let frags = self.pending_traces.remove(&id).expect("key collected above");
            let api = frags
                .iter()
                .find(|f| f.api != REMOTE_FRAGMENT_API)
                .map(|f| f.api)
                .expect("group has a root fragment");
            let mut spans = Vec::with_capacity(frags.iter().map(|f| f.spans.len()).sum());
            for frag in frags {
                spans.extend(frag.spans);
            }
            self.traces.push(Trace { id: TraceId(id), api, spans });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ApiSpec, CallNode, ChildMode, ServiceSpec};

    fn chain3() -> AppTopology {
        AppTopology::new(
            "chain3",
            vec![
                ServiceSpec::new("a", 1.0, 500).cv(0.0),
                ServiceSpec::new("b", 2.0, 250).cv(0.0),
                ServiceSpec::new("c", 1.0, 400).cv(0.0),
            ],
            vec![ApiSpec::new(
                "get",
                CallNode::new(0).call(CallNode::new(1).call(CallNode::new(2))),
            )],
        )
    }

    fn shard_cfg() -> SimConfig {
        SimConfig { request_timeout_us: None, return_us: 200, ..SimConfig::default() }
    }

    fn run_sharded(threads: usize) -> (Vec<(u64, u64)>, u64, u64, u64) {
        let mut w = ShardedWorld::new(chain3(), shard_cfg(), 11, threads);
        for s in 0..3u16 {
            w.add_instances(ServiceId(s), 1, 1000.0, SimTime::ZERO);
        }
        for i in 0..50u64 {
            w.inject(ApiId(0), SimTime(i * 20_000));
        }
        w.run_until(SimTime::from_secs(3.0));
        w.run_to_quiescence(SimTime::from_secs(10.0));
        let done = w.drain_completions();
        let lat: Vec<(u64, u64)> = done.iter().map(|c| (c.start.0, c.latency_us())).collect();
        let traces = w.drain_traces();
        (lat, fingerprint_completions(&done), fingerprint_traces(&traces), w.stats().events)
    }

    #[test]
    fn sharded_run_completes_and_drains() {
        let mut w = ShardedWorld::new(chain3(), shard_cfg(), 5, 2);
        for s in 0..3u16 {
            w.add_instances(ServiceId(s), 1, 1000.0, SimTime::ZERO);
        }
        for i in 0..20u64 {
            w.inject(ApiId(0), SimTime(i * 10_000));
        }
        w.run_until(SimTime::from_secs(2.0));
        w.run_to_quiescence(SimTime::from_secs(5.0));
        assert_eq!(w.stats().completed, 20);
        assert_eq!(w.stats().injected, 20);
        assert_eq!(w.in_flight(), 0, "proxies and roots all drained");
        let traces = w.drain_traces();
        assert_eq!(traces.len(), 20, "full sampling: one merged trace per request");
        for t in traces {
            assert_eq!(t.spans.len(), 3, "three services, three spans");
            assert_eq!(t.spans.iter().filter(|s| s.is_root()).count(), 1);
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let one = run_sharded(1);
        let two = run_sharded(2);
        let eight = run_sharded(8);
        assert_eq!(one, two, "1 vs 2 workers");
        assert_eq!(one, eight, "1 vs 8 workers");
    }

    #[test]
    fn sharded_matches_serial_with_same_return_delay() {
        // cv = 0 everywhere and full sampling: the serial world with the
        // same return_us is the exact differential reference (work draws
        // skip the RNG, so per-shard streams cannot diverge from serial).
        let mut serial = World::new(chain3(), shard_cfg(), 11);
        let mut sharded = ShardedWorld::new(chain3(), shard_cfg(), 11, 2);
        for s in 0..3u16 {
            serial.add_instances(ServiceId(s), 1, 1000.0, SimTime::ZERO);
            sharded.add_instances(ServiceId(s), 1, 1000.0, SimTime::ZERO);
        }
        for i in 0..40u64 {
            serial.inject(ApiId(0), SimTime(i * 25_000));
            sharded.inject(ApiId(0), SimTime(i * 25_000));
        }
        serial.run_until(SimTime::from_secs(5.0));
        sharded.run_until(SimTime::from_secs(3.0));
        sharded.run_to_quiescence(SimTime::from_secs(5.0));
        let mut a: Vec<(u64, u64, bool)> =
            serial.drain_completions().iter().map(|c| (c.start.0, c.end.0, c.timed_out)).collect();
        let mut b: Vec<(u64, u64, bool)> =
            sharded.drain_completions().iter().map(|c| (c.start.0, c.end.0, c.timed_out)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "same completions as the serial reference");
        assert_eq!(serial.stats().spans, sharded.stats().spans);
    }

    #[test]
    fn parallel_fanout_crosses_shards() {
        // root -> (b ∥ c): both children are remote; outstanding counting
        // and Done-return plumbing must handle a multi-child stage.
        let topo = AppTopology::new(
            "fan",
            vec![
                ServiceSpec::new("root", 0.5, 300).cv(0.0),
                ServiceSpec::new("b", 5.0, 300).cv(0.0),
                ServiceSpec::new("c", 9.0, 300).cv(0.0),
            ],
            vec![ApiSpec::new(
                "get",
                CallNode::new(0)
                    .children_mode(ChildMode::Parallel, vec![CallNode::new(1), CallNode::new(2)]),
            )],
        );
        let mut w = ShardedWorld::new(topo, shard_cfg(), 3, 2);
        for s in 0..3u16 {
            w.add_instances(ServiceId(s), 1, 1000.0, SimTime::ZERO);
        }
        w.inject(ApiId(0), SimTime::from_millis(1.0));
        w.run_to_quiescence(SimTime::from_secs(2.0));
        let done = w.drain_completions();
        assert_eq!(done.len(), 1);
        // Parallel children: ≈ max(5, 9) ms + root work + hops + returns.
        let lat_ms = done[0].latency_us() as f64 / 1000.0;
        assert!((9.0..12.5).contains(&lat_ms), "parallel latency {lat_ms} ms");
    }
}
