//! Processor-sharing service instances.
//!
//! An [`Instance`] is one replica of a microservice with a CPU quota in
//! millicores. All in-flight jobs share the quota equally, with each job's
//! rate capped at one core (a request handler is single-threaded). This model
//! produces the two properties the paper relies on:
//!
//! * latency is a monotone decreasing, convex function of quota (§2.2, §3.5),
//!   flattening once `quota ≥ concurrency × per-job cap` — which is what puts
//!   an *upper* bound on useful quota in Algorithm 1;
//! * transient overload lengthens every in-flight request, producing the heavy
//!   p99 tails the latency prediction model is trained on.

use crate::frame::FrameId;
use crate::time::SimTime;
use crate::topology::ServiceId;

/// Work remaining below this threshold (millicore·µs) counts as finished;
/// absorbs rounding from integer event times.
const WORK_EPS: f64 = 1e-3;

/// Identifies an instance within the world's instance table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

/// Lifecycle state of an instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceState {
    /// Created but not yet schedulable; becomes [`InstanceState::Ready`] at
    /// the contained time (container startup latency, Figure 1).
    Starting {
        /// When the instance becomes ready.
        ready_at: SimTime,
    },
    /// Serving traffic.
    Ready,
    /// Removed from service: finishes in-flight jobs, accepts no new ones.
    Draining,
}

/// One in-flight job on an instance.
#[derive(Clone, Copy, Debug)]
struct Job {
    frame: FrameId,
    remaining_mc_us: f64,
}

/// A processor-sharing replica of a microservice.
#[derive(Debug)]
pub struct Instance {
    /// Owning service.
    pub service: ServiceId,
    /// CPU quota in millicores.
    pub quota_mc: f64,
    /// Lifecycle state.
    pub state: InstanceState,
    jobs: Vec<Job>,
    last_advance: SimTime,
    /// Bumped whenever the job set or rates change; stale completion-check
    /// events (scheduled under an older epoch) are ignored.
    pub epoch: u64,
    /// Per-job rate cap in millicores (1 core = 1000 by default).
    per_job_cap_mc: f64,
    /// Cached `min(jobs.remaining_mc_us)` (`f64::INFINITY` when idle) so
    /// [`Instance::next_completion`] is O(1) instead of a per-event scan.
    /// Processor sharing burns every job by the same amount per advance, so
    /// the minimum element never changes between job-set mutations and the
    /// cache stays bitwise equal to a fresh fold over the jobs.
    min_remaining: f64,
}

impl Instance {
    /// Creates an instance for `service` with `quota_mc` millicores.
    pub fn new(
        service: ServiceId,
        quota_mc: f64,
        state: InstanceState,
        per_job_cap_mc: f64,
        now: SimTime,
    ) -> Self {
        assert!(quota_mc > 0.0, "quota must be positive");
        assert!(per_job_cap_mc > 0.0, "per-job cap must be positive");
        Self {
            service,
            quota_mc,
            state,
            jobs: Vec::new(),
            last_advance: now,
            epoch: 0,
            per_job_cap_mc,
            min_remaining: f64::INFINITY,
        }
    }

    /// Number of in-flight jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if the instance can accept new jobs.
    pub fn accepts_jobs(&self) -> bool {
        self.state == InstanceState::Ready
    }

    /// Per-job execution rate in millicores at the current job count.
    fn rate_per_job(&self) -> f64 {
        let n = self.jobs.len();
        if n == 0 {
            return 0.0;
        }
        (self.quota_mc / n as f64).min(self.per_job_cap_mc)
    }

    /// Advances job progress from `last_advance` to `now`.
    ///
    /// Returns the CPU consumed during the interval in millicore·µs (for the
    /// cAdvisor-style usage account).
    pub fn advance(&mut self, now: SimTime) -> f64 {
        let dt = (now - self.last_advance).as_micros() as f64;
        self.last_advance = now;
        if dt <= 0.0 || self.jobs.is_empty() {
            return 0.0;
        }
        let rate = self.rate_per_job();
        let burn = rate * dt;
        let mut used = 0.0;
        for j in &mut self.jobs {
            let actual = burn.min(j.remaining_mc_us.max(0.0));
            j.remaining_mc_us -= burn;
            used += actual;
        }
        // Every job burned the same amount: the cached minimum is the minimum
        // job's value, so the same subtraction keeps it bitwise in sync.
        self.min_remaining -= burn;
        used
    }

    /// Adds a job with `work_mc_us` millicore·µs of demand. Caller must have
    /// advanced the instance to `now` first and must reschedule the
    /// completion check. Bumps the epoch.
    pub fn push_job(&mut self, frame: FrameId, work_mc_us: f64) {
        debug_assert!(work_mc_us > 0.0);
        self.jobs.push(Job { frame, remaining_mc_us: work_mc_us });
        self.min_remaining = self.min_remaining.min(work_mc_us);
        self.epoch += 1;
    }

    /// Removes and returns frames whose work is complete. Bumps the epoch if
    /// anything finished. Caller must have advanced to `now` first.
    ///
    /// Allocating convenience wrapper over [`Instance::take_finished_into`];
    /// the event loop uses the `_into` form with a pooled buffer.
    pub fn take_finished(&mut self) -> Vec<FrameId> {
        let mut done = Vec::new();
        self.take_finished_into(&mut done);
        done
    }

    /// Appends frames whose work is complete to `done`, removing them from
    /// the job set. Bumps the epoch if anything finished. Caller must have
    /// advanced to `now` first.
    pub fn take_finished_into(&mut self, done: &mut Vec<FrameId>) {
        let before = done.len();
        let mut min_rem = f64::INFINITY;
        self.jobs.retain(|j| {
            if j.remaining_mc_us <= WORK_EPS {
                done.push(j.frame);
                false
            } else {
                min_rem = min_rem.min(j.remaining_mc_us);
                true
            }
        });
        self.min_remaining = min_rem;
        if done.len() != before {
            self.epoch += 1;
        }
    }

    /// Predicts when the next job will finish, given current rates.
    ///
    /// Returns `None` when idle. The returned time is strictly after `now`
    /// (rounded up to the next microsecond). O(1) via the cached minimum.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        let rate = self.rate_per_job();
        if rate <= 0.0 {
            return None;
        }
        let min_rem = self.min_remaining.max(0.0);
        if !min_rem.is_finite() {
            return None;
        }
        let dt_us = (min_rem / rate).ceil().max(1.0) as u64;
        Some(SimTime(now.0 + dt_us))
    }

    /// Removes a specific job (client abandoned the request). Caller must
    /// advance first and reschedule the completion check. Bumps the epoch.
    /// Returns `true` if the job was present.
    pub fn remove_job(&mut self, frame: FrameId) -> bool {
        let before = self.jobs.len();
        self.jobs.retain(|j| j.frame != frame);
        let removed = self.jobs.len() != before;
        if removed {
            self.min_remaining =
                self.jobs.iter().map(|j| j.remaining_mc_us).fold(f64::INFINITY, f64::min);
            self.epoch += 1;
        }
        removed
    }

    /// Changes the quota (vertical scaling). Caller must advance first and
    /// reschedule the completion check. Bumps the epoch.
    pub fn set_quota(&mut self, quota_mc: f64) {
        assert!(quota_mc > 0.0);
        self.quota_mc = quota_mc;
        self.epoch += 1;
    }

    /// Marks the instance draining. Bumps the epoch.
    pub fn start_draining(&mut self) {
        self.state = InstanceState::Draining;
        self.epoch += 1;
    }

    /// `true` when draining and no jobs remain (safe to delete).
    pub fn drained(&self) -> bool {
        self.state == InstanceState::Draining && self.jobs.is_empty()
    }

    /// Sum of remaining work over in-flight jobs (millicore·µs) — used by
    /// tests to check work conservation.
    pub fn backlog_mc_us(&self) -> f64 {
        self.jobs.iter().map(|j| j.remaining_mc_us.max(0.0)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(quota: f64) -> Instance {
        Instance::new(ServiceId(0), quota, InstanceState::Ready, 1000.0, SimTime::ZERO)
    }

    #[test]
    fn single_job_runs_at_capped_rate() {
        let mut i = inst(2000.0);
        i.push_job(FrameId(1), 1000.0 * 1000.0); // 1000 mc·ms = 1 core-second... in µs: 1e6 mc·µs
                                                 // Rate capped at 1000 mc although quota is 2000.
        let t = i.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(t.0, 1000, "1e6 mc·µs at 1000 mc = 1000 µs");
    }

    #[test]
    fn two_jobs_share_quota() {
        let mut i = inst(1000.0);
        i.push_job(FrameId(1), 1000.0); // needs 1 µs alone... at shared 500mc: 2 µs
        i.push_job(FrameId(2), 1000.0);
        let t = i.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(t.0, 2);
        let used = i.advance(SimTime(2));
        assert!((used - 2000.0).abs() < 1e-6, "full quota consumed: {used}");
        let done = i.take_finished();
        assert_eq!(done.len(), 2);
        assert_eq!(i.job_count(), 0);
    }

    #[test]
    fn advance_is_work_conserving() {
        let mut i = inst(800.0);
        i.push_job(FrameId(1), 5_000.0);
        i.push_job(FrameId(2), 9_000.0);
        let before = i.backlog_mc_us();
        let used = i.advance(SimTime(5));
        let after = i.backlog_mc_us();
        assert!((before - after - used).abs() < 1e-6, "burned work equals usage");
    }

    #[test]
    fn epochs_invalidate_on_change() {
        let mut i = inst(1000.0);
        let e0 = i.epoch;
        i.push_job(FrameId(1), 100.0);
        assert!(i.epoch > e0);
        i.advance(SimTime(10));
        let e1 = i.epoch;
        let done = i.take_finished();
        assert_eq!(done, vec![FrameId(1)]);
        assert!(i.epoch > e1);
    }

    #[test]
    fn idle_instance_has_no_completion() {
        let i = inst(1000.0);
        assert_eq!(i.next_completion(SimTime::ZERO), None);
        assert_eq!(i.job_count(), 0);
    }

    #[test]
    fn draining_lifecycle() {
        let mut i = inst(1000.0);
        i.push_job(FrameId(1), 1000.0);
        i.start_draining();
        assert!(!i.accepts_jobs());
        assert!(!i.drained(), "still has a job");
        i.advance(SimTime(10));
        i.take_finished();
        assert!(i.drained());
    }

    #[test]
    fn completion_time_is_strictly_future() {
        let mut i = inst(1000.0);
        i.push_job(FrameId(1), 1e-9); // vanishing work still takes >= 1 µs
        let t = i.next_completion(SimTime(5)).unwrap();
        assert!(t.0 >= 6);
    }

    #[test]
    fn more_quota_is_never_slower() {
        // Latency monotonicity at the instance level.
        for &(q1, q2) in &[(200.0, 400.0), (400.0, 900.0), (900.0, 5000.0)] {
            let mut a = inst(q1);
            let mut b = inst(q2);
            for f in 0..4 {
                a.push_job(FrameId(f), 10_000.0);
                b.push_job(FrameId(f), 10_000.0);
            }
            let ta = a.next_completion(SimTime::ZERO).unwrap();
            let tb = b.next_completion(SimTime::ZERO).unwrap();
            assert!(tb <= ta, "quota {q2} should not be slower than {q1}");
        }
    }
}
