//! Simulated time: microsecond-resolution instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of simulated time, in microseconds since simulation start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// An instant `secs` seconds after the epoch (rounded to µs).
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs >= 0.0);
        SimTime((secs * 1e6).round() as u64)
    }

    /// An instant `ms` milliseconds after the epoch (rounded to µs).
    pub fn from_millis(ms: f64) -> Self {
        debug_assert!(ms >= 0.0);
        SimTime((ms * 1e3).round() as u64)
    }

    /// An instant `us` microseconds after the epoch.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier` (saturating at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `secs` seconds (rounded to µs).
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs >= 0.0);
        SimDuration((secs * 1e6).round() as u64)
    }

    /// A duration of `ms` milliseconds (rounded to µs).
    pub fn from_millis(ms: f64) -> Self {
        debug_assert!(ms >= 0.0);
        SimDuration((ms * 1e3).round() as u64)
    }

    /// A duration of `us` microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_millis(2.5).as_micros(), 2_500);
        assert_eq!(SimDuration::from_secs(0.000001).as_micros(), 1);
        assert!((SimTime::from_micros(250_000).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(100) + SimDuration::from_micros(50);
        assert_eq!(t, SimTime::from_micros(150));
        assert_eq!(t - SimTime::from_micros(100), SimDuration::from_micros(50));
        // Saturating subtraction: earlier - later = 0.
        assert_eq!(SimTime::from_micros(10) - SimTime::from_micros(20), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1.0) < SimTime::from_secs(2.0));
        assert!(SimDuration::from_millis(1.0) < SimDuration::from_millis(1.5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(1.25).to_string(), "1.250s");
        assert_eq!(SimDuration::from_millis(3.5).to_string(), "3.500ms");
    }
}
