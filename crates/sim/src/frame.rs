//! Execution frames: the per-hop state machine of a request.
//!
//! One [`Frame`] exists per call-tree node execution (so a node with
//! `repeat = 3` creates three frames over the request's lifetime). A frame
//! goes through: waiting for an instance → local work on an instance →
//! issuing child calls (sequentially or in parallel) → complete, at which
//! point it reports to its parent frame and emits a span.

use crate::time::SimTime;
use crate::topology::ServiceId;

/// Identifies a frame within the world's frame table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u32);

/// Identifies a request (also used as the trace id).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Progress state of a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameState {
    /// Queued at the service, waiting for any ready instance.
    PendingInstance,
    /// Local work executing on an instance.
    Working,
    /// Local work done; one child stage in flight.
    ///
    /// All calls of the stage run in parallel; `outstanding` counts them
    /// down, after which the next stage starts or the frame completes.
    Children {
        /// Index of the in-flight stage.
        stage: u16,
        /// Child frames of this stage still in flight.
        outstanding: u32,
    },
    /// Finished (kept briefly until recycled).
    Done,
}

/// One executing call-tree node.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Owning request.
    pub request: RequestId,
    /// Slot of the owning request in the world's request slab — a direct
    /// index that avoids a map lookup per frame event on the hot path.
    pub req_slot: u32,
    /// API plan node index (into the flattened plan, see `world::ApiPlan`).
    pub plan_node: u16,
    /// Service executing this frame.
    pub service: ServiceId,
    /// Parent frame, `None` for the request root.
    pub parent: Option<FrameId>,
    /// Span id assigned to this frame within its trace.
    pub span_id: u32,
    /// Parent's span id.
    pub parent_span: Option<u32>,
    /// When the frame was created (span start).
    pub start: SimTime,
    /// Progress state.
    pub state: FrameState,
    /// Instance executing this frame's local work (set while `Working`).
    pub instance: Option<u32>,
    /// Generation counter for slot reuse; ids embed validity via the world's
    /// frame table generation check.
    pub generation: u32,
}

impl Frame {
    /// `true` once the frame has completed.
    pub fn is_done(&self) -> bool {
        self.state == FrameState::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_state_transitions_are_plain_data() {
        let mut f = Frame {
            request: RequestId(1),
            req_slot: 0,
            plan_node: 0,
            service: ServiceId(0),
            parent: None,
            span_id: 0,
            parent_span: None,
            start: SimTime::ZERO,
            state: FrameState::PendingInstance,
            instance: None,
            generation: 0,
        };
        assert!(!f.is_done());
        f.state = FrameState::Working;
        f.state = FrameState::Children { stage: 0, outstanding: 1 };
        f.state = FrameState::Done;
        assert!(f.is_done());
    }
}
