//! # graf-sim
//!
//! Deterministic discrete-event simulator of a microservice application — the
//! substrate that stands in for the paper's 7-machine Kubernetes cluster.
//!
//! The simulation models exactly the phenomena GRAF's design depends on:
//!
//! * **Processor-sharing service stations** ([`station::Instance`]): each
//!   instance has a CPU quota in millicores; in-flight jobs share it equally
//!   (capped per job at one core). This yields the monotone, convex
//!   latency-vs-quota curves of Figure 6 and §2.2 which make gradient-descent
//!   resource optimization sound (§3.5), and produces realistic queueing tails.
//! * **Per-API call trees** ([`topology`]): requests do local work at a
//!   service, then call children sequentially or in parallel (Bookinfo-style
//!   `max` composition), so end-to-end latency is the paper's mix of additions
//!   and maxima over per-service latencies.
//! * **Instance lifecycle with startup latency**: new instances only become
//!   schedulable after a delay the orchestrator layer sets from Figure 1's
//!   measured creation times — the root cause of the cascading effect (§2.1).
//! * **Tracing & metrics hooks**: every hop can emit a Jaeger-style span
//!   (`graf-trace`), and every service tracks CPU usage/quota, arrival rate
//!   and latency windows (`graf-metrics`).
//!
//! The simulation is fully deterministic: all randomness flows from a single
//! seed through [`rng::DetRng`], events are ordered by `(time, sequence)`, and
//! no wall-clock time is read anywhere.
//!
//! Two execution modes share those semantics: the serial [`world::World`]
//! and the sharded [`exec::ShardedWorld`], which partitions the service
//! topology across per-shard worlds ([`shard::Partition`]) and runs them
//! under conservative synchronization — bit-identically for any worker
//! count (DESIGN.md §14).
//!
//! ## Example
//!
//! ```
//! use graf_sim::topology::{AppTopology, ApiSpec, CallNode, ChildMode, ServiceSpec};
//! use graf_sim::time::SimTime;
//! use graf_sim::world::{SimConfig, World};
//!
//! // A two-service chain: frontend -> backend.
//! let topo = AppTopology::new(
//!     "demo",
//!     vec![
//!         ServiceSpec::new("frontend", 2.0, 500),
//!         ServiceSpec::new("backend", 4.0, 500),
//!     ],
//!     vec![ApiSpec::new(
//!         "get",
//!         CallNode::new(0).call(CallNode::new(1)),
//!     )],
//! );
//! let mut world = World::new(topo, SimConfig::default(), 7);
//! // One ready instance per service, 1000 millicores each.
//! world.add_instances(0.into(), 1, 1000.0, SimTime::ZERO);
//! world.add_instances(1.into(), 1, 1000.0, SimTime::ZERO);
//! // Inject 100 requests, 10 ms apart, and run for 5 simulated seconds.
//! for i in 0..100u64 {
//!     world.inject(0.into(), SimTime::from_millis(10.0 * i as f64));
//! }
//! world.run_until(SimTime::from_secs(5.0));
//! let done = world.drain_completions();
//! assert_eq!(done.len(), 100);
//! assert!(done.iter().all(|c| c.latency_us() >= 1000), "two hops of base latency");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod events;
pub mod exec;
pub mod frame;
pub mod loadidx;
pub mod rng;
pub mod service;
pub mod shard;
pub mod station;
pub mod time;
pub mod topology;
pub mod world;

pub use events::QueueKind;
pub use exec::ShardedWorld;
pub use rng::DetRng;
pub use shard::{shard_seed, Partition};
pub use time::{SimDuration, SimTime};
pub use topology::{ApiId, ApiSpec, AppTopology, CallNode, ChildMode, ServiceId, ServiceSpec};
pub use world::{Completion, SimConfig, World};
