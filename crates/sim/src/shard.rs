//! Topology partitioning and shard-seed derivation for the deterministic
//! parallel executor ([`crate::exec::ShardedWorld`]).
//!
//! A [`Partition`] splits the services of an [`AppTopology`] into shards.
//! Each shard simulates its services on a private [`crate::world::World`]
//! with its own calendar queue and its own RNG streams, seeded by
//! [`shard_seed`] from `(sim_seed, shard key)` — the same derivation
//! discipline graf-sweep uses for cell seeds, so a shard's randomness is a
//! pure function of *what it simulates*, never of how many workers run the
//! fleet or which worker it lands on.
//!
//! Cross-shard interactions are plain messages (`ShardMsg`) exchanged at
//! conservative-synchronization barriers: a call into a service owned by
//! another shard travels as a `RemoteStartMsg` with delivery time
//! `issue + base_us(callee)`, and the subtree's completion travels back as a
//! `Done` message with delivery time `completion + return_us`. The
//! partition's **lookahead** is the minimum of those delivery delays over
//! all cross-shard edges; as long as every shard only executes events within
//! one lookahead window before exchanging messages, no shard can ever
//! receive a message "from the past" (see DESIGN.md §14 for the full
//! invariance argument).

use crate::frame::FrameId;
use crate::time::SimTime;
use crate::topology::{ApiId, AppTopology, ServiceId};

/// 64-bit FNV-1a of `bytes` (the sweep crate's cell-key hash, duplicated
/// here so `graf-sim` stays dependency-free).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// splitmix64's output finalizer: a strong 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives the deterministic RNG seed of the shard with canonical key
/// `shard_key` under simulation seed `sim_seed`.
///
/// The derivation is FNV-1a over the key bytes mixed with the simulation
/// seed through splitmix64 — exactly the `(grid_seed, cell_key)` scheme of
/// `graf_sweep::derive_seed`. A shard's key is the sorted `+`-joined list of
/// its service names, so a shard's seed depends only on *which services it
/// owns*: repartitioning other shards, changing the worker count, or adding
/// services elsewhere never perturbs an existing shard's random streams.
///
/// ```
/// use graf_sim::shard::shard_seed;
///
/// let a = shard_seed(7, "cart");
/// assert_eq!(a, shard_seed(7, "cart"), "pure function of (seed, key)");
/// assert_ne!(a, shard_seed(8, "cart"), "simulation seed matters");
/// assert_ne!(a, shard_seed(7, "currency"), "shard key matters");
/// ```
pub fn shard_seed(sim_seed: u64, shard_key: &str) -> u64 {
    mix(fnv1a(shard_key.as_bytes()) ^ mix(sim_seed))
}

/// Lookahead value meaning "no cross-shard edges": shards are fully
/// independent and a window can span the whole `run_until` horizon.
pub const NO_CROSS_EDGES: u64 = u64::MAX;

/// A deterministic assignment of services to shards, plus the derived
/// conservative-synchronization lookahead.
///
/// The partition is a pure function of the topology (and the grouping
/// parameters) — never of thread count — so the shard layout, every shard's
/// key and seed, and therefore every simulated outcome are identical no
/// matter how many workers execute the shards.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Shard index owning each service (indexed by `ServiceId`).
    owner: Vec<u32>,
    /// Services of each shard, ascending.
    shards: Vec<Vec<ServiceId>>,
    /// Canonical shard keys: the shard's service names, sorted, `+`-joined.
    keys: Vec<String>,
    /// Minimum cross-shard message delay in µs ([`NO_CROSS_EDGES`] when the
    /// shards never exchange messages).
    lookahead_us: u64,
}

impl Partition {
    /// The finest safe partition: one shard per service.
    ///
    /// Instances of one service share mutable state (the min-load index, the
    /// pending queue, the CPU account), so a service is the smallest unit
    /// that can move between shards. `return_us` is the configured
    /// child-completion return delay ([`crate::world::SimConfig::return_us`]);
    /// it participates in the lookahead because subtree completions travel
    /// back across the same shard boundary.
    pub fn per_service(topo: &AppTopology, return_us: u64) -> Self {
        let owner: Vec<u32> = (0..topo.num_services() as u32).collect();
        Self::from_owner(topo, owner, return_us)
    }

    /// Groups services into at most `max_shards` shards, balancing by
    /// `work_ms` (heaviest services spread first). Deterministic: services
    /// are ordered by `(work_ms descending, id ascending)` and each is
    /// assigned to the currently lightest shard (ties to the lowest index).
    pub fn grouped(topo: &AppTopology, max_shards: usize, return_us: u64) -> Self {
        let n_shards = max_shards.max(1).min(topo.num_services().max(1));
        let mut by_weight: Vec<usize> = (0..topo.num_services()).collect();
        by_weight.sort_by(|&a, &b| {
            let (wa, wb) = (topo.services[a].work_ms, topo.services[b].work_ms);
            wb.partial_cmp(&wa).expect("finite service work").then(a.cmp(&b))
        });
        let mut load = vec![0.0f64; n_shards];
        let mut owner = vec![0u32; topo.num_services()];
        for svc in by_weight {
            let lightest = load
                .iter()
                .enumerate()
                .min_by(|(ia, a), (ib, b)| {
                    a.partial_cmp(b).expect("finite shard load").then(ia.cmp(ib))
                })
                .map(|(i, _)| i)
                .expect("at least one shard");
            owner[svc] = lightest as u32;
            load[lightest] += topo.services[svc].work_ms;
        }
        Self::from_owner(topo, owner, return_us)
    }

    /// Builds the partition metadata (shard lists, keys, lookahead) from a
    /// service→shard assignment. Empty shards are compacted away so shard
    /// indices are dense.
    fn from_owner(topo: &AppTopology, raw_owner: Vec<u32>, return_us: u64) -> Self {
        let n_raw = raw_owner.iter().map(|&s| s as usize + 1).max().unwrap_or(1);
        // Compact to dense shard indices in first-appearance-by-service order
        // (deterministic: services scan in id order).
        let mut remap = vec![u32::MAX; n_raw];
        let mut next = 0u32;
        let mut owner = vec![0u32; raw_owner.len()];
        for (svc, &raw) in raw_owner.iter().enumerate() {
            if remap[raw as usize] == u32::MAX {
                remap[raw as usize] = next;
                next += 1;
            }
            owner[svc] = remap[raw as usize];
        }
        let mut shards: Vec<Vec<ServiceId>> = vec![Vec::new(); next as usize];
        for (svc, &sh) in owner.iter().enumerate() {
            shards[sh as usize].push(ServiceId(svc as u16));
        }
        let keys: Vec<String> = shards
            .iter()
            .map(|svcs| {
                let mut names: Vec<&str> =
                    svcs.iter().map(|s| topo.services[s.0 as usize].name.as_str()).collect();
                names.sort_unstable();
                names.join("+")
            })
            .collect();
        // Lookahead: the minimum delay of any message that can cross a shard
        // boundary. Calls into a foreign service arrive after the callee's
        // base (network) latency; subtree completions return after
        // `return_us`. No cross edges → shards never talk → no bound.
        let mut lookahead_us = NO_CROSS_EDGES;
        for (parent, child) in topo.edges() {
            if owner[parent.0 as usize] != owner[child.0 as usize] {
                let base = topo.services[child.0 as usize].base_us;
                lookahead_us = lookahead_us.min(base).min(return_us);
            }
        }
        Self { owner, shards, keys, lookahead_us }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard index owning `service`.
    pub fn owner(&self, service: ServiceId) -> usize {
        self.owner[service.0 as usize] as usize
    }

    /// The service→shard assignment, indexed by service id.
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }

    /// Services of shard `shard`, ascending by id.
    pub fn services(&self, shard: usize) -> &[ServiceId] {
        &self.shards[shard]
    }

    /// Canonical key of shard `shard` (sorted service names, `+`-joined) —
    /// the input to [`shard_seed`].
    pub fn key(&self, shard: usize) -> &str {
        &self.keys[shard]
    }

    /// Minimum cross-shard message delay in µs, or [`NO_CROSS_EDGES`] when
    /// the shards are fully independent.
    pub fn lookahead_us(&self) -> u64 {
        self.lookahead_us
    }
}

/// Sentinel `api` value marking a finished trace as a *remote subtree
/// fragment* rather than a request root. The executor's trace merge emits a
/// trace only once its root fragment (a non-sentinel `api`) has arrived,
/// which — by the conservative-window argument — guarantees every fragment
/// of that trace is already present.
pub(crate) const REMOTE_FRAGMENT_API: u16 = u16::MAX;

/// Where a remote subtree came from: the calling shard and the parent frame
/// awaiting the subtree's completion.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RemoteOrigin {
    /// Shard that issued the cross-shard call.
    pub shard: u32,
    /// Parent frame (in the origin shard) with the outstanding child slot.
    pub frame: FrameId,
    /// Parent frame's generation at issue time (staleness guard).
    pub generation: u32,
}

/// A cross-shard call: "start plan node `plan_node` of `api` on your side".
///
/// Carries everything the receiving shard needs to build a proxy request
/// slot whose spans join the root's trace: the structural span ids, the
/// trace id and sampling decision, and the origin coordinates for the
/// eventual `Done` reply.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RemoteStartMsg {
    /// When the caller issued the call (the child span's start time).
    pub issue: SimTime,
    /// Delivery time: `issue + base_us(callee service)`.
    pub start_at: SimTime,
    /// API of the owning request.
    pub api: ApiId,
    /// Flattened plan node to execute.
    pub plan_node: u16,
    /// Structural span id of the subtree root.
    pub span_id: u32,
    /// Span id of the calling frame.
    pub parent_span: u32,
    /// Trace id of the owning request (the root's request id).
    pub trace_id: u64,
    /// Whether the owning request is trace-sampled.
    pub sampled: bool,
    /// Origin coordinates for the `Done` reply.
    pub origin: RemoteOrigin,
}

/// A message crossing a shard boundary. Exchanged between worlds at the
/// executor's window barriers; every delivery time is at least one lookahead
/// past the sending window's start, so messages always land in a *future*
/// window of the receiving shard.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ShardMsg {
    /// Start a remote subtree.
    Start(RemoteStartMsg),
    /// A remote subtree finished: count down the origin frame's outstanding
    /// children at `time` (= completion + `return_us`).
    Done {
        /// Delivery time in the origin shard.
        time: SimTime,
        /// The origin frame whose child completed.
        frame: FrameId,
        /// Origin frame's generation at issue time.
        generation: u32,
    },
}

/// Per-world sharding context, attached by the executor. `None` on a world
/// means serial mode: every service is local and the cross-shard branches in
/// the event handlers are never taken.
#[derive(Debug)]
pub(crate) struct ShardCtx {
    /// This world's shard index.
    pub index: u32,
    /// Shard owning each service (indexed by service id).
    pub owner: Vec<u32>,
    /// Outgoing messages per destination shard, drained at the window
    /// barrier in destination order.
    pub outbox: Vec<Vec<ShardMsg>>,
    /// Incoming messages (already ordered by source shard), scheduled into
    /// the event queue at the start of the next window.
    pub inbox: Vec<ShardMsg>,
    /// Payload slab for in-flight `RemoteStartMsg`s: the event queue
    /// stores only a slot index, keeping the event enum small for the
    /// serial hot path. Slots recycle through `pool_free`.
    pub pool: Vec<RemoteStartMsg>,
    /// Free slots of `pool`.
    pub pool_free: Vec<u32>,
}

impl ShardCtx {
    /// Creates the context for shard `index` of a `num_shards`-way partition
    /// with the given service→shard map.
    pub fn new(index: u32, owner: Vec<u32>, num_shards: usize) -> Self {
        Self {
            index,
            owner,
            outbox: vec![Vec::new(); num_shards],
            inbox: Vec::new(),
            pool: Vec::new(),
            pool_free: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ApiSpec, CallNode, ServiceSpec};

    fn chain3() -> AppTopology {
        AppTopology::new(
            "chain3",
            vec![
                ServiceSpec::new("a", 1.0, 700),
                ServiceSpec::new("b", 2.0, 250),
                ServiceSpec::new("c", 3.0, 400),
            ],
            vec![ApiSpec::new(
                "get",
                CallNode::new(0).call(CallNode::new(1).call(CallNode::new(2))),
            )],
        )
    }

    #[test]
    fn per_service_partition_is_one_shard_per_service() {
        let p = Partition::per_service(&chain3(), 250);
        assert_eq!(p.num_shards(), 3);
        assert_eq!(p.owner(ServiceId(1)), 1);
        assert_eq!(p.key(2), "c");
        // Lookahead: min over cross edges of callee base, and return_us.
        // Edges a→b (base 250) and b→c (base 400), return 250 → 250.
        assert_eq!(p.lookahead_us(), 250);
    }

    #[test]
    fn lookahead_is_bounded_by_return_delay() {
        let p = Partition::per_service(&chain3(), 100);
        assert_eq!(p.lookahead_us(), 100, "returns cross shards too");
    }

    #[test]
    fn single_service_partition_has_no_cross_edges() {
        let topo = AppTopology::new(
            "solo",
            vec![ServiceSpec::new("s", 1.0, 100)],
            vec![ApiSpec::new("get", CallNode::new(0))],
        );
        let p = Partition::per_service(&topo, 250);
        assert_eq!(p.num_shards(), 1);
        assert_eq!(p.lookahead_us(), NO_CROSS_EDGES);
    }

    #[test]
    fn grouped_partition_balances_by_work_and_stays_deterministic() {
        let p = Partition::grouped(&chain3(), 2, 250);
        assert_eq!(p.num_shards(), 2);
        // Balance: c (3.0) seeds one group, b (2.0) the other, a (1.0)
        // joins b's lighter group; dense indices then follow first
        // appearance in service-id order, so {a, b} is shard 0.
        assert_eq!(p.owner(ServiceId(0)), 0);
        assert_eq!(p.owner(ServiceId(1)), 0);
        assert_eq!(p.owner(ServiceId(2)), 1);
        assert_eq!(p.key(0), "a+b", "keys are sorted service names");
        let q = Partition::grouped(&chain3(), 2, 250);
        assert_eq!(p.owners(), q.owners(), "pure function of the topology");
    }

    #[test]
    fn shard_seed_matches_the_sweep_derivation_shape() {
        // Pin reference values: changing the hash silently would re-seed
        // every shard of every committed experiment.
        assert_eq!(shard_seed(0, "a"), { super::mix(super::fnv1a(b"a") ^ super::mix(0)) });
        assert_ne!(shard_seed(7, "cart"), shard_seed(7, "cart+currency"));
    }
}
