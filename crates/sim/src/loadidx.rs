//! Minimum-load instance index.
//!
//! [`crate::world::World`] dispatches every frame to the ready instance of a
//! service with the fewest in-flight jobs, breaking ties by instance id —
//! exactly `min_by_key(|i| (jobs, id))`. A linear scan per dispatch is O(n)
//! in replica count and shows up at 50k qps; this module replaces it with a
//! flat segment tree (min-tournament) over packed `(jobs << 32) | id` keys,
//! giving O(log n) updates and O(1) minimum queries while reproducing the
//! scan's ordering bit for bit.
//!
//! Non-schedulable instances (starting, draining, deleted) hold the sentinel
//! [`EMPTY`] key, which loses every comparison, so the tree's minimum is
//! always a ready instance when one exists. Slots are recycled through a
//! free-list so the tree only grows with the peak replica count; growth
//! doubles capacity, keeping steady-state updates allocation-free.

/// Key stored for slots that must never win the minimum (not Ready/deleted).
pub const EMPTY: u64 = u64::MAX;

/// Packs a job count and instance id into an ordered key.
///
/// Comparing packed keys is identical to comparing `(jobs, id)` tuples
/// because the job count occupies the high 32 bits.
#[inline]
pub fn pack(jobs: u32, id: u32) -> u64 {
    ((jobs as u64) << 32) | id as u64
}

/// Flat segment tree answering "which schedulable instance has the fewest
/// jobs (lowest id on ties)" in O(1), with O(log n) point updates.
#[derive(Debug, Default)]
pub struct MinLoadTree {
    /// Number of leaves (power of two, 0 until first insert).
    cap: usize,
    /// 1-indexed tournament tree; leaves live at `[cap, 2*cap)`.
    keys: Vec<u64>,
    /// Recycled leaf slots.
    free: Vec<u32>,
    /// Occupied leaves (for growth bookkeeping only).
    len: usize,
}

impl MinLoadTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims a leaf slot holding `key`, growing (by doubling) when full.
    pub fn insert(&mut self, key: u64) -> u32 {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                if self.len == self.cap {
                    self.grow();
                }
                // After growth every slot in [len, cap) is free; `len` is the
                // lowest never-used one (free-list only holds recycled slots).
                self.len as u32
            }
        };
        self.len = self.len.max(slot as usize + 1);
        self.update(slot, key);
        slot
    }

    /// Sets the key at `slot` and re-folds minima up to the root.
    pub fn update(&mut self, slot: u32, key: u64) {
        let mut i = self.cap + slot as usize;
        self.keys[i] = key;
        while i > 1 {
            i /= 2;
            self.keys[i] = self.keys[2 * i].min(self.keys[2 * i + 1]);
        }
    }

    /// Releases `slot` back to the free-list (it stops competing).
    pub fn remove(&mut self, slot: u32) {
        self.update(slot, EMPTY);
        self.free.push(slot);
    }

    /// Minimum key over occupied slots, `None` when no schedulable instance
    /// exists. Unpack with `(key >> 32) as u32` jobs / `key as u32` id.
    #[inline]
    pub fn min_key(&self) -> Option<u64> {
        if self.cap == 0 || self.keys[1] == EMPTY {
            None
        } else {
            Some(self.keys[1])
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.cap * 2).max(4);
        let mut keys = vec![EMPTY; 2 * new_cap];
        keys[new_cap..new_cap + self.cap].copy_from_slice(&self.keys[self.cap..2 * self.cap]);
        for i in (1..new_cap).rev() {
            keys[i] = keys[2 * i].min(keys[2 * i + 1]);
        }
        self.cap = new_cap;
        self.keys = keys;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_has_no_min() {
        let t = MinLoadTree::new();
        assert_eq!(t.min_key(), None);
    }

    #[test]
    fn min_tracks_updates_and_ties_break_by_id() {
        let mut t = MinLoadTree::new();
        let a = t.insert(pack(2, 7));
        let b = t.insert(pack(2, 3));
        let c = t.insert(pack(5, 1));
        assert_eq!(t.min_key(), Some(pack(2, 3)), "tie on jobs → lowest id");
        t.update(b, pack(9, 3));
        assert_eq!(t.min_key(), Some(pack(2, 7)));
        t.update(a, EMPTY); // instance stops being schedulable
        assert_eq!(t.min_key(), Some(pack(5, 1)));
        t.remove(c);
        t.update(b, EMPTY);
        assert_eq!(t.min_key(), None);
    }

    #[test]
    fn slots_recycle_and_growth_preserves_keys() {
        let mut t = MinLoadTree::new();
        let slots: Vec<u32> = (0..10).map(|i| t.insert(pack(i, i))).collect();
        assert_eq!(t.min_key(), Some(pack(0, 0)));
        t.remove(slots[0]);
        let reused = t.insert(pack(100, 0));
        assert_eq!(reused, slots[0], "free-list reuses released slot");
        assert_eq!(t.min_key(), Some(pack(1, 1)));
        // Push past another doubling and confirm ordering still matches a scan:
        // the new keys bottom out at jobs=1 (id 1039), tying the surviving
        // original pack(1, 1), which wins on the lower id.
        for i in 10..40 {
            t.insert(pack(40 - i, 1000 + i));
        }
        assert_eq!(t.min_key(), Some(pack(1, 1)));
    }

    #[test]
    fn matches_linear_scan_reference() {
        // Deterministic xorshift stream of insert/update/remove ops compared
        // against a Vec<Option<u64>> reference.
        let mut t = MinLoadTree::new();
        let mut reference: Vec<Option<u64>> = Vec::new();
        let mut slot_of: Vec<u32> = Vec::new();
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for step in 0..2000u64 {
            let r = rng();
            match r % 3 {
                0 => {
                    let key = pack((r >> 8) as u32 % 64, step as u32);
                    let slot = t.insert(key);
                    reference.push(Some(key));
                    slot_of.push(slot);
                }
                1 if !reference.is_empty() => {
                    let i = (r >> 8) as usize % reference.len();
                    if reference[i].is_some() {
                        let key = pack((r >> 40) as u32 % 64, i as u32);
                        t.update(slot_of[i], key);
                        reference[i] = Some(key);
                    }
                }
                _ if !reference.is_empty() => {
                    let i = (r >> 8) as usize % reference.len();
                    if reference[i].is_some() {
                        t.remove(slot_of[i]);
                        reference[i] = None;
                    }
                }
                _ => {}
            }
            let want = reference.iter().flatten().min().copied();
            assert_eq!(t.min_key(), want, "step {step}");
        }
    }
}
