//! Deterministic event queue.
//!
//! Events are ordered by `(time, insertion sequence)` so ties resolve in
//! schedule order, keeping runs bit-for-bit reproducible across platforms.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of timestamped events with deterministic tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Time of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Removes and returns the earliest event if it is due at or before `t`.
    pub fn pop_due(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(pt) if pt <= t => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), 1);
        q.schedule(SimTime(5), 2);
        q.schedule(SimTime(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn pop_due_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "early");
        q.schedule(SimTime(100), "late");
        assert_eq!(q.pop_due(SimTime(50)), Some((SimTime(10), "early")));
        assert_eq!(q.pop_due(SimTime(50)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime(100)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }
}
