//! Deterministic event queues.
//!
//! Events are ordered by `(time, insertion sequence)` so ties resolve in
//! schedule order, keeping runs bit-for-bit reproducible across platforms.
//!
//! Two implementations share that contract:
//!
//! * [`EventQueue`] — the reference `BinaryHeap` min-queue. O(log n) per
//!   operation, trivially correct; kept as the differential-testing oracle.
//! * [`CalendarQueue`] — a three-level bucketed timing wheel. O(1) amortized
//!   per operation for the discrete-event steady state, where nearly every
//!   event is scheduled a short horizon ahead of the current time. This is
//!   the simulator's default core (see DESIGN.md §12).
//!
//! [`Queue`] dispatches between them; [`QueueKind`] selects one per world via
//! `SimConfig`.
//!
//! # The calendar queue's extra contract
//!
//! The wheel maintains a monotone cursor `cur`, a lower bound on every queued
//! event time. [`CalendarQueue::schedule`] requires `time >= cur`, i.e. no
//! event may be scheduled before the last popped event or before any horizon
//! already passed to [`CalendarQueue::pop_due`]. Discrete-event simulation
//! satisfies this by construction (causality: handlers schedule at or after
//! `now`); `World` clamps external injections to `now`. A violating time is
//! clamped to `cur` in release builds (it would fire as soon as possible,
//! exactly like an already-due event in the heap) and asserts in debug.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Which event-queue implementation a world uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// Bucketed timing wheel ([`CalendarQueue`]): the fast default.
    #[default]
    Calendar,
    /// Reference `BinaryHeap` ([`EventQueue`]): the differential-test oracle.
    Heap,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of timestamped events with deterministic tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Time of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Removes and returns the earliest event if it is due at or before `t`.
    pub fn pop_due(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(pt) if pt <= t => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Calendar queue: a three-level bucketed timing wheel.
// ---------------------------------------------------------------------------

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 10;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Occupancy-bitmap words per level.
const WORDS: usize = SLOTS / 64;
/// log2 bucket width (µs) per level: 64 µs, ~65 ms, ~67 s.
const SHIFTS: [u32; 3] = [6, 16, 26];
/// Times at or beyond `cur`'s 2^36 µs (~19 h) epoch end go to the overflow.
const OVERFLOW_SHIFT: u32 = 36;
/// Capacity floor for level-1/2 buckets on their first use (see `far_push`).
const FAR_BUCKET_MIN: usize = 64;

/// One wheel level: `SLOTS` unsorted buckets plus an occupancy bitmap so the
/// next non-empty slot is found by word scan, not by walking empty buckets.
struct Level<E> {
    buckets: Vec<Vec<Entry<E>>>,
    occ: [u64; WORDS],
}

impl<E> Level<E> {
    fn new() -> Self {
        let mut buckets = Vec::with_capacity(SLOTS);
        for _ in 0..SLOTS {
            buckets.push(Vec::new());
        }
        Self { buckets, occ: [0; WORDS] }
    }

    fn set(&mut self, slot: usize) {
        self.occ[slot >> 6] |= 1u64 << (slot & 63);
    }

    fn clear(&mut self, slot: usize) {
        self.occ[slot >> 6] &= !(1u64 << (slot & 63));
    }

    /// First occupied slot at or after `from`, if any.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let mut w = from >> 6;
        if w >= WORDS {
            return None;
        }
        let mut word = self.occ[w] & (!0u64 << (from & 63));
        loop {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= WORDS {
                return None;
            }
            word = self.occ[w];
        }
    }
}

/// A hierarchical calendar queue preserving the exact `(time, seq)` order of
/// [`EventQueue`].
///
/// Near-future events (within ~65 ms of the cursor) land in 64 µs level-0
/// buckets; farther events land in coarser levels (~67 s, ~19 h) and cascade
/// down as the cursor reaches their window; anything beyond ~19 h waits in an
/// overflow list. Buckets are unsorted appends until the cursor enters one,
/// at which point it is sorted once (descending, so draining pops from the
/// back) — total ordering work is O(n log b) for bucket occupancy b, and the
/// steady state allocates nothing once bucket capacities are warm.
pub struct CalendarQueue<E> {
    levels: [Level<E>; 3],
    overflow: Vec<Entry<E>>,
    /// Monotone lower bound on all queued event times (µs).
    cur: u64,
    /// `true` while the level-0 bucket at `cur`'s slot is sorted descending
    /// and being drained from the back.
    draining: bool,
    len: usize,
    next_seq: u64,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue with the cursor at t = 0.
    pub fn new() -> Self {
        Self {
            levels: [Level::new(), Level::new(), Level::new()],
            overflow: Vec::new(),
            cur: 0,
            draining: false,
            len: 0,
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`. Requires `time >= cur` (see module docs);
    /// earlier times are clamped to the cursor.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        debug_assert!(time.0 >= self.cur, "schedule({}) before cursor {}", time.0, self.cur);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let time = SimTime(time.0.max(self.cur));
        self.place(Entry { time, seq, event });
    }

    /// Routes an entry to its level/bucket given the current cursor.
    fn place(&mut self, e: Entry<E>) {
        let t = e.time.0;
        if t >> (SHIFTS[0] + SLOT_BITS) == self.cur >> (SHIFTS[0] + SLOT_BITS) {
            let s = Self::slot(t, 0);
            if self.draining && s == Self::slot(self.cur, 0) {
                // The active bucket is sorted descending by (time, seq):
                // binary-insert so the drain order stays exact.
                let b = &mut self.levels[0].buckets[s];
                let key = (e.time.0, e.seq);
                let pos = b.partition_point(|x| (x.time.0, x.seq) > key);
                b.insert(pos, e);
            } else {
                self.levels[0].buckets[s].push(e);
                self.levels[0].set(s);
            }
        } else if t >> (SHIFTS[1] + SLOT_BITS) == self.cur >> (SHIFTS[1] + SLOT_BITS) {
            let s = Self::slot(t, 1);
            Self::far_push(&mut self.levels[1].buckets[s], e);
            self.levels[1].set(s);
        } else if t >> (SHIFTS[2] + SLOT_BITS) == self.cur >> (SHIFTS[2] + SLOT_BITS) {
            let s = Self::slot(t, 2);
            Self::far_push(&mut self.levels[2].buckets[s], e);
            self.levels[2].set(s);
        } else {
            self.overflow.push(e);
        }
    }

    /// Push into a far-level (1/2) bucket with a capacity floor. Far buckets
    /// accumulate batches (bulk-injected arrivals, cascaded spill) whose size
    /// often lands exactly on a power of two; without the floor, the single
    /// extra event that trickles in near a wheel boundary re-allocates the
    /// bucket every epoch and the steady state never becomes allocation-free.
    fn far_push(bucket: &mut Vec<Entry<E>>, e: Entry<E>) {
        if bucket.is_empty() && bucket.capacity() < FAR_BUCKET_MIN {
            bucket.reserve(FAR_BUCKET_MIN);
        }
        bucket.push(e);
    }

    #[inline]
    fn slot(t: u64, level: usize) -> usize {
        ((t >> SHIFTS[level]) as usize) & (SLOTS - 1)
    }

    /// Start (µs) of the bucket window `slot` of `level` within `cur`'s epoch.
    #[inline]
    fn window_start(&self, level: usize, slot: usize) -> u64 {
        let base = self.cur & !((1u64 << (SHIFTS[level] + SLOT_BITS)) - 1);
        base | ((slot as u64) << SHIFTS[level])
    }

    /// Advances the cursor; on crossing a top-level epoch boundary, cascades
    /// the overflow entries that now belong in the wheel.
    fn set_cur(&mut self, new: u64) {
        debug_assert!(new >= self.cur);
        let crossed = (new >> OVERFLOW_SHIFT) != (self.cur >> OVERFLOW_SHIFT);
        self.cur = new;
        if crossed && !self.overflow.is_empty() {
            let epoch = new >> OVERFLOW_SHIFT;
            let mut i = 0;
            while i < self.overflow.len() {
                if self.overflow[i].time.0 >> OVERFLOW_SHIFT == epoch {
                    let e = self.overflow.swap_remove(i);
                    self.place(e);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Moves every entry of `levels[level].buckets[slot]` down a level (or
    /// into level 0) now that the cursor has entered its window. The bucket's
    /// capacity is preserved so redistribution never re-allocates it.
    fn cascade(&mut self, level: usize, slot: usize) {
        let mut moved = std::mem::take(&mut self.levels[level].buckets[slot]);
        self.levels[level].clear(slot);
        for e in moved.drain(..) {
            self.place(e);
        }
        self.levels[level].buckets[slot] = moved;
    }

    /// Removes and returns the earliest event if it is due at or before `t`.
    ///
    /// Advances the cursor to the popped event's time, or to `t` when nothing
    /// is due (the caller's clock moves to `t` either way).
    pub fn pop_due(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        loop {
            if self.len == 0 {
                if t.0 > self.cur {
                    self.set_cur(t.0);
                }
                return None;
            }
            if self.draining {
                let s = Self::slot(self.cur, 0);
                let b = &mut self.levels[0].buckets[s];
                match b.last() {
                    Some(last) if last.time.0 > t.0 => {
                        // Earliest queued event is past the horizon.
                        if t.0 > self.cur {
                            self.set_cur(t.0);
                        }
                        return None;
                    }
                    Some(_) => {
                        let e = b.pop().expect("non-empty drain bucket");
                        if b.is_empty() {
                            self.levels[0].clear(s);
                            self.draining = false;
                        }
                        self.len -= 1;
                        self.set_cur(e.time.0);
                        return Some((e.time, e.event));
                    }
                    None => {
                        self.levels[0].clear(s);
                        self.draining = false;
                    }
                }
                continue;
            }
            // Find the next non-empty level-0 bucket in the cursor's window.
            if let Some(s) = self.levels[0].next_occupied(Self::slot(self.cur, 0)) {
                let start = self.window_start(0, s);
                if start > t.0 {
                    if t.0 > self.cur {
                        self.set_cur(t.0);
                    }
                    return None;
                }
                if start > self.cur {
                    self.set_cur(start);
                }
                // Sort descending by (time, seq): draining pops from the back.
                self.levels[0].buckets[s]
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.time.0, e.seq)));
                self.draining = true;
                continue;
            }
            // Level 0 exhausted: cascade the next level-1 window, then level 2,
            // then the overflow epoch.
            if let Some(s) = self.levels[1].next_occupied(Self::slot(self.cur, 1)) {
                let start = self.window_start(1, s);
                if start > t.0 {
                    if t.0 > self.cur {
                        self.set_cur(t.0);
                    }
                    return None;
                }
                if start > self.cur {
                    self.set_cur(start);
                }
                self.cascade(1, s);
                continue;
            }
            if let Some(s) = self.levels[2].next_occupied(Self::slot(self.cur, 2)) {
                let start = self.window_start(2, s);
                if start > t.0 {
                    if t.0 > self.cur {
                        self.set_cur(t.0);
                    }
                    return None;
                }
                if start > self.cur {
                    self.set_cur(start);
                }
                self.cascade(2, s);
                continue;
            }
            debug_assert!(!self.overflow.is_empty(), "len > 0 but wheel and overflow empty");
            let tmin = self.overflow.iter().map(|e| e.time.0).min().unwrap_or(u64::MAX);
            if tmin > t.0 {
                if t.0 > self.cur {
                    self.set_cur(t.0);
                }
                return None;
            }
            // Entering tmin's top-level epoch cascades it into the wheel.
            let epoch_base = tmin & !((1u64 << OVERFLOW_SHIFT) - 1);
            self.set_cur(epoch_base.max(self.cur));
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None; // avoid dragging the cursor to u64::MAX
        }
        self.pop_due(SimTime(u64::MAX))
    }

    /// Time of the earliest scheduled event, if any. Non-mutating: scans the
    /// first candidate bucket of each level (O(bucket occupancy), cold path).
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(s) = self.levels[0].next_occupied(Self::slot(self.cur, 0)) {
            let b = &self.levels[0].buckets[s];
            let m = if self.draining && s == Self::slot(self.cur, 0) {
                b.last().map(|e| e.time.0)
            } else {
                b.iter().map(|e| e.time.0).min()
            };
            return m.map(SimTime);
        }
        for level in 1..3 {
            if let Some(s) = self.levels[level].next_occupied(Self::slot(self.cur, level)) {
                return self.levels[level].buckets[s].iter().map(|e| e.time.0).min().map(SimTime);
            }
        }
        self.overflow.iter().map(|e| e.time.0).min().map(SimTime)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Event queue dispatching to the configured implementation.
// One `Queue` exists per `World`, so the size skew between the wheel (inline
// level metadata) and the heap variant costs nothing; boxing the wheel would
// add a pointer chase to every schedule/pop on the hot path.
#[allow(clippy::large_enum_variant)]
pub enum Queue<E> {
    /// Bucketed timing wheel (default).
    Calendar(CalendarQueue<E>),
    /// Reference binary heap.
    Heap(EventQueue<E>),
}

impl<E> Queue<E> {
    /// Creates an empty queue of the given kind.
    pub fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Calendar => Queue::Calendar(CalendarQueue::new()),
            QueueKind::Heap => Queue::Heap(EventQueue::new()),
        }
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        match self {
            Queue::Calendar(q) => q.schedule(time, event),
            Queue::Heap(q) => q.schedule(time, event),
        }
    }

    /// Removes and returns the earliest event if it is due at or before `t`.
    pub fn pop_due(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        match self {
            Queue::Calendar(q) => q.pop_due(t),
            Queue::Heap(q) => q.pop_due(t),
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            Queue::Calendar(q) => q.pop(),
            Queue::Heap(q) => q.pop(),
        }
    }

    /// Time of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match self {
            Queue::Calendar(q) => q.peek_time(),
            Queue::Heap(q) => q.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            Queue::Calendar(q) => q.len(),
            Queue::Heap(q) => q.len(),
        }
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), 1);
        q.schedule(SimTime(5), 2);
        q.schedule(SimTime(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn pop_due_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "early");
        q.schedule(SimTime(100), "late");
        assert_eq!(q.pop_due(SimTime(50)), Some((SimTime(10), "early")));
        assert_eq!(q.pop_due(SimTime(50)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime(100)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn calendar_pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn calendar_ties_break_by_insertion_order() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime(5), 1);
        q.schedule(SimTime(5), 2);
        q.schedule(SimTime(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn calendar_pop_due_respects_horizon() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime(10), "early");
        q.schedule(SimTime(100), "late");
        assert_eq!(q.pop_due(SimTime(50)), Some((SimTime(10), "early")));
        assert_eq!(q.pop_due(SimTime(50)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime(100)));
    }

    #[test]
    fn calendar_empty_queue_behaviour() {
        let mut q: CalendarQueue<u8> = CalendarQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn calendar_inserts_into_active_bucket_keep_order() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime(10), 0);
        q.schedule(SimTime(12), 1);
        assert_eq!(q.pop(), Some((SimTime(10), 0)));
        // The bucket at the cursor is now draining; same-bucket inserts must
        // merge into the remaining order, including a tie at the popped time.
        q.schedule(SimTime(11), 2);
        q.schedule(SimTime(10), 3); // tie with the cursor: pops next
        assert_eq!(q.pop(), Some((SimTime(10), 3)));
        assert_eq!(q.pop(), Some((SimTime(11), 2)));
        assert_eq!(q.pop(), Some((SimTime(12), 1)));
    }

    #[test]
    fn calendar_crosses_every_level_and_overflow() {
        // One event per residence class: level 0 (64 µs buckets), level 1
        // (~65 ms), level 2 (~67 s) and the >19 h overflow.
        let times = [50u64, 70_000, 70_000_000, 1 << 37, (1 << 37) + 5];
        let mut q = CalendarQueue::new();
        let mut h = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
            h.schedule(SimTime(t), i);
        }
        loop {
            let (a, b) = (q.pop(), h.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn calendar_matches_heap_on_mixed_horizons() {
        // Deterministic mixed workload: interleaved schedules and horizon
        // pops, exercising cascades mid-drain.
        let mut q = CalendarQueue::new();
        let mut h = EventQueue::new();
        let mut now = 0u64;
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut id = 0usize;
        for step in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if step % 3 != 2 {
                let spread = match x % 5 {
                    0 => 0,                // tie
                    1 => x % 64,           // same bucket
                    2 => x % 60_000,       // level 0/1
                    3 => x % 50_000_000,   // level 1/2
                    _ => x % (1u64 << 38), // level 2 / overflow
                };
                q.schedule(SimTime(now + spread), id);
                h.schedule(SimTime(now + spread), id);
                id += 1;
            } else {
                let horizon = SimTime(now + x % 1_000_000);
                let (a, b) = (q.pop_due(horizon), h.pop_due(horizon));
                assert_eq!(a, b, "divergence at step {step}");
                now = a.map_or(horizon.0, |(t, _)| t.0);
            }
        }
        loop {
            let (a, b) = (q.pop(), h.pop());
            assert_eq!(a, b);
            let Some((t, _)) = a else { break };
            now = t.0;
            let _ = now;
        }
        assert!(q.is_empty() && h.is_empty());
    }
}
