//! Application topology: services, APIs and per-API call trees.
//!
//! A microservice application is a set of [`ServiceSpec`]s plus one
//! [`ApiSpec`] per front-end API. Each API carries a call tree ([`CallNode`]):
//! a request does local work at a node's service, then performs its child
//! calls sequentially or in parallel, then returns. This is the structure the
//! paper's Figures 4, 5 and 10 draw, and it determines both the trace shape
//! and the GNN's message-passing graph.

use std::fmt::Write as _;

/// Index of a service within an [`AppTopology`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(pub u16);

impl From<u16> for ServiceId {
    fn from(v: u16) -> Self {
        ServiceId(v)
    }
}

/// Index of an API within an [`AppTopology`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ApiId(pub u16);

impl From<u16> for ApiId {
    fn from(v: u16) -> Self {
        ApiId(v)
    }
}

/// Static description of one microservice.
#[derive(Clone, Debug)]
pub struct ServiceSpec {
    /// Human-readable name ("frontend", "cart", …).
    pub name: String,
    /// Mean CPU demand per request, in milliseconds of a full core.
    ///
    /// A request that would hold one core (1000 mc) for 3 ms has demand 3.0.
    /// Offered load in millicores is therefore `qps × work_ms`.
    pub work_ms: f64,
    /// Fixed per-hop overhead (network + framework), microseconds.
    pub base_us: u64,
    /// Coefficient of variation of the per-request CPU demand (lognormal).
    pub cv: f64,
}

impl ServiceSpec {
    /// Creates a spec with the default service-time variability (cv = 0.5).
    pub fn new(name: &str, work_ms: f64, base_us: u64) -> Self {
        Self { name: name.to_string(), work_ms, base_us, cv: 0.5 }
    }

    /// Sets the coefficient of variation of per-request CPU demand.
    pub fn cv(mut self, cv: f64) -> Self {
        self.cv = cv;
        self
    }
}

/// Compatibility marker for the two classic child-call patterns.
///
/// Retained for readability in topology constructors: `Sequential` builds one
/// stage per child, `Parallel` puts all children in a single stage. The
/// general mechanism is [`CallNode::stages`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ChildMode {
    /// Children are called one after another (one stage each).
    #[default]
    Sequential,
    /// All children are called at once and the node waits for the slowest
    /// (Bookinfo's Details ∥ Reviews pattern, §2.2).
    Parallel,
}

/// One node of an API's call tree.
///
/// After its local work completes, a node executes its child **stages** in
/// order; within a stage, all calls (including a node's `repeat` copies) run
/// in parallel and the stage finishes when the slowest call returns. This
/// expresses both the paper's sequential front-end fan-out (Online Boutique's
/// Frontend calling Currency, then Cart, …) and parallel patterns (Bookinfo's
/// Details ∥ Reviews; Social Network's compose-post fan-out followed by a
/// storage write).
#[derive(Clone, Debug)]
pub struct CallNode {
    /// Which service executes this node.
    pub service: ServiceId,
    /// Multiplier on the service's mean CPU demand for this API.
    pub work_scale: f64,
    /// How many parallel copies of this call the parent stage issues (≥ 1).
    pub repeat: u32,
    /// Downstream stages, executed in order after local work.
    pub stages: Vec<Vec<CallNode>>,
}

impl CallNode {
    /// A leaf call to `service` with defaults (scale 1.0, repeat 1).
    pub fn new(service: u16) -> Self {
        Self { service: ServiceId(service), work_scale: 1.0, repeat: 1, stages: Vec::new() }
    }

    /// Sets the work scale.
    pub fn work_scale(mut self, s: f64) -> Self {
        self.work_scale = s;
        self
    }

    /// Sets the repeat count (parallel copies issued by the parent stage).
    pub fn repeat(mut self, n: u32) -> Self {
        assert!(n >= 1, "repeat must be >= 1");
        self.repeat = n;
        self
    }

    /// Appends one stage of parallel calls.
    pub fn then(mut self, stage: Vec<CallNode>) -> Self {
        assert!(!stage.is_empty(), "a stage must contain at least one call");
        self.stages.push(stage);
        self
    }

    /// Appends a single-call stage.
    pub fn call(self, child: CallNode) -> Self {
        self.then(vec![child])
    }

    /// Sets the children using the classic two-mode description.
    pub fn children_mode(mut self, mode: ChildMode, children: Vec<CallNode>) -> Self {
        match mode {
            ChildMode::Sequential => {
                for c in children {
                    self.stages.push(vec![c]);
                }
            }
            ChildMode::Parallel => {
                if !children.is_empty() {
                    self.stages.push(children);
                }
            }
        }
        self
    }

    /// Iterates over all child nodes across stages.
    pub fn child_nodes(&self) -> impl Iterator<Item = &CallNode> {
        self.stages.iter().flatten()
    }
}

/// Static description of one front-end API.
#[derive(Clone, Debug)]
pub struct ApiSpec {
    /// Human-readable name ("cart-page", "post-compose", …).
    pub name: String,
    /// The call tree rooted at the front-end service. The root's `repeat`
    /// must be 1.
    pub tree: CallNode,
}

impl ApiSpec {
    /// Creates an API spec.
    pub fn new(name: &str, tree: CallNode) -> Self {
        Self { name: name.to_string(), tree }
    }
}

/// A complete application topology.
#[derive(Clone, Debug)]
pub struct AppTopology {
    /// Application name.
    pub name: String,
    /// All services; [`ServiceId`]s index into this vector.
    pub services: Vec<ServiceSpec>,
    /// All front-end APIs; [`ApiId`]s index into this vector.
    pub apis: Vec<ApiSpec>,
}

impl AppTopology {
    /// Creates and validates a topology.
    ///
    /// # Panics
    /// Panics on invalid structure (out-of-range service ids, zero repeats,
    /// non-positive work, root repeat ≠ 1, excessive depth) — topologies are
    /// static program data, so failing fast is correct.
    pub fn new(name: &str, services: Vec<ServiceSpec>, apis: Vec<ApiSpec>) -> Self {
        let topo = Self { name: name.to_string(), services, apis };
        topo.validate();
        topo
    }

    fn validate(&self) {
        assert!(!self.services.is_empty(), "topology needs at least one service");
        assert!(!self.apis.is_empty(), "topology needs at least one API");
        for s in &self.services {
            assert!(s.work_ms > 0.0, "service {} must have positive work", s.name);
            assert!(s.cv >= 0.0, "service {} cv must be >= 0", s.name);
        }
        for api in &self.apis {
            assert_eq!(api.tree.repeat, 1, "API {} root repeat must be 1", api.name);
            self.validate_node(&api.tree, 0, &api.name);
        }
    }

    fn validate_node(&self, node: &CallNode, depth: usize, api: &str) {
        assert!(depth < 32, "API {api} call tree too deep (cycle?)");
        assert!(
            (node.service.0 as usize) < self.services.len(),
            "API {api} references unknown service {}",
            node.service.0
        );
        assert!(node.repeat >= 1, "API {api} has a zero-repeat call");
        assert!(node.work_scale > 0.0, "API {api} has a non-positive work scale");
        for c in node.child_nodes() {
            self.validate_node(c, depth + 1, api);
        }
    }

    /// Number of services.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// Number of APIs.
    pub fn num_apis(&self) -> usize {
        self.apis.len()
    }

    /// Ground-truth call multiplicity: how many times one request of `api`
    /// executes `service` (product of repeats along each path, summed over
    /// occurrences).
    pub fn multiplicity(&self, api: ApiId, service: ServiceId) -> f64 {
        fn walk(node: &CallNode, service: ServiceId, factor: f64, acc: &mut f64) {
            let here = factor * node.repeat as f64;
            if node.service == service {
                *acc += here;
            }
            for c in node.child_nodes() {
                walk(c, service, here, acc);
            }
        }
        let mut acc = 0.0;
        walk(&self.apis[api.0 as usize].tree, service, 1.0, &mut acc);
        acc
    }

    /// Directed parent→child service edges over all APIs, deduplicated and
    /// sorted. This is the message-passing graph of the GNN (§3.4).
    pub fn edges(&self) -> Vec<(ServiceId, ServiceId)> {
        fn walk(node: &CallNode, out: &mut Vec<(ServiceId, ServiceId)>) {
            for c in node.child_nodes() {
                out.push((node.service, c.service));
                walk(c, out);
            }
        }
        let mut v = Vec::new();
        for api in &self.apis {
            walk(&api.tree, &mut v);
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Services reached by `api`, sorted.
    pub fn services_in_api(&self, api: ApiId) -> Vec<ServiceId> {
        fn walk(node: &CallNode, out: &mut Vec<ServiceId>) {
            out.push(node.service);
            for c in node.child_nodes() {
                walk(c, out);
            }
        }
        let mut v = Vec::new();
        walk(&self.apis[api.0 as usize].tree, &mut v);
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Graphviz DOT rendering of the service graph (for the `topologies` bench
    /// binary, mirroring Figures 4/5/10).
    pub fn to_dot(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        for (i, svc) in self.services.iter().enumerate() {
            let _ = writeln!(s, "  s{} [label=\"{}\"];", i, svc.name);
        }
        for (p, c) in self.edges() {
            let _ = writeln!(s, "  s{} -> s{};", p.0, c.0);
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear3() -> AppTopology {
        AppTopology::new(
            "lin",
            vec![
                ServiceSpec::new("a", 1.0, 100),
                ServiceSpec::new("b", 1.0, 100),
                ServiceSpec::new("c", 1.0, 100),
            ],
            vec![ApiSpec::new(
                "get",
                CallNode::new(0).children_mode(
                    ChildMode::Sequential,
                    vec![CallNode::new(1)
                        .children_mode(ChildMode::Sequential, vec![CallNode::new(2)])],
                ),
            )],
        )
    }

    #[test]
    fn multiplicity_of_linear_chain() {
        let t = linear3();
        for s in 0..3 {
            assert_eq!(t.multiplicity(ApiId(0), ServiceId(s)), 1.0);
        }
    }

    #[test]
    fn multiplicity_with_repeats_multiplies_along_path() {
        // root -> (b x2) -> (c x3): c runs 6 times per request.
        let t = AppTopology::new(
            "rep",
            vec![
                ServiceSpec::new("a", 1.0, 0),
                ServiceSpec::new("b", 1.0, 0),
                ServiceSpec::new("c", 1.0, 0),
            ],
            vec![ApiSpec::new(
                "get",
                CallNode::new(0).children_mode(
                    ChildMode::Sequential,
                    vec![CallNode::new(1)
                        .repeat(2)
                        .children_mode(ChildMode::Sequential, vec![CallNode::new(2).repeat(3)])],
                ),
            )],
        );
        assert_eq!(t.multiplicity(ApiId(0), ServiceId(1)), 2.0);
        assert_eq!(t.multiplicity(ApiId(0), ServiceId(2)), 6.0);
        assert_eq!(t.multiplicity(ApiId(0), ServiceId(0)), 1.0);
    }

    #[test]
    fn edges_deduplicate_across_apis() {
        let t = AppTopology::new(
            "two-apis",
            vec![ServiceSpec::new("a", 1.0, 0), ServiceSpec::new("b", 1.0, 0)],
            vec![
                ApiSpec::new(
                    "x",
                    CallNode::new(0).children_mode(ChildMode::Sequential, vec![CallNode::new(1)]),
                ),
                ApiSpec::new(
                    "y",
                    CallNode::new(0).children_mode(ChildMode::Sequential, vec![CallNode::new(1)]),
                ),
            ],
        );
        assert_eq!(t.edges(), vec![(ServiceId(0), ServiceId(1))]);
    }

    #[test]
    fn services_in_api_subsets() {
        let t = AppTopology::new(
            "sub",
            vec![
                ServiceSpec::new("a", 1.0, 0),
                ServiceSpec::new("b", 1.0, 0),
                ServiceSpec::new("c", 1.0, 0),
            ],
            vec![
                ApiSpec::new(
                    "x",
                    CallNode::new(0).children_mode(ChildMode::Sequential, vec![CallNode::new(1)]),
                ),
                ApiSpec::new(
                    "y",
                    CallNode::new(0).children_mode(ChildMode::Sequential, vec![CallNode::new(2)]),
                ),
            ],
        );
        assert_eq!(t.services_in_api(ApiId(0)), vec![ServiceId(0), ServiceId(1)]);
        assert_eq!(t.services_in_api(ApiId(1)), vec![ServiceId(0), ServiceId(2)]);
    }

    #[test]
    #[should_panic(expected = "unknown service")]
    fn out_of_range_service_panics() {
        AppTopology::new(
            "bad",
            vec![ServiceSpec::new("a", 1.0, 0)],
            vec![ApiSpec::new("x", CallNode::new(5))],
        );
    }

    #[test]
    #[should_panic(expected = "root repeat")]
    fn root_repeat_must_be_one() {
        AppTopology::new(
            "bad",
            vec![ServiceSpec::new("a", 1.0, 0)],
            vec![ApiSpec::new("x", CallNode::new(0).repeat(2))],
        );
    }

    #[test]
    fn dot_contains_all_services_and_edges() {
        let t = linear3();
        let dot = t.to_dot();
        assert!(dot.contains("s0 [label=\"a\"]"));
        assert!(dot.contains("s0 -> s1;"));
        assert!(dot.contains("s1 -> s2;"));
    }
}
