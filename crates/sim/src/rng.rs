//! Deterministic random-number generation and the distributions the
//! simulation draws from.
//!
//! All stochastic behaviour in the simulator (service-time variability,
//! arrival jitter, trace sampling, user think times) flows from one seed so
//! experiments are exactly reproducible. Distributions are implemented
//! in-repo — the offline dependency set has `rand` but no `rand_distr`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded deterministic RNG with the distribution helpers the simulator needs.
///
/// The determinism invariant: the same seed and fork stream always produce
/// the same draw sequence, bit for bit.
///
/// ```
/// use graf_sim::rng::DetRng;
/// let mut a = DetRng::new(42).fork(42 ^ 0x1);
/// let mut b = DetRng::new(42).fork(42 ^ 0x1);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0)); // bit-identical
/// let mut c = DetRng::new(42).fork(42 ^ 0x2); // independent stream
/// assert_ne!(a.uniform(0.0, 1.0), c.uniform(0.0, 1.0));
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    inner: SmallRng,
}

/// SplitMix64 step, used for seed derivation when forking streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        Self { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derives an independent child RNG for a named stream.
    ///
    /// Forking keeps subsystems (load generation, service-time draws, trace
    /// sampling) statistically independent while preserving determinism even
    /// when one subsystem changes how many draws it makes.
    pub fn fork(&self, stream: u64) -> DetRng {
        // Derive from a fresh seed rather than the current state so forks are
        // stable regardless of draw order; mix the stream id twice to
        // decorrelate adjacent streams.
        let s = splitmix64(splitmix64(stream).wrapping_add(0xA5A5_5A5A_1234_5678));
        DetRng::new(s)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// 64 uniform random bits — the cheapest draw, for consumers that batch
    /// many coarse Bernoulli trials (e.g. dropout masks) out of one call.
    pub fn bits64(&mut self) -> u64 {
        self.inner.gen::<u64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Exponential with the given mean (inverse-CDF method).
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Guard against ln(0).
        let u = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller (cosine branch).
    pub fn std_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal parameterized by its *mean* and coefficient of variation.
    ///
    /// For service times: `mean` is the intended average work, `cv` is
    /// std/mean. `cv == 0` returns `mean` exactly.
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        debug_assert!(mean > 0.0 && cv >= 0.0);
        if cv == 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        (mu + sigma2.sqrt() * self.std_normal()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_state() {
        let parent1 = DetRng::new(1);
        let mut parent2 = DetRng::new(1);
        parent2.unit(); // advance parent2's state
        let mut f1 = parent1.fork(9);
        let mut f2 = parent2.fork(9);
        assert_eq!(f1.unit().to_bits(), f2.unit().to_bits(), "forks depend only on stream id");
    }

    #[test]
    fn exp_mean_converges() {
        let mut r = DetRng::new(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn lognormal_mean_and_cv_converge() {
        let mut r = DetRng::new(4);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| r.lognormal_mean_cv(10.0, 0.5)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 10.0).abs() < 0.25, "mean={mean}");
        assert!((cv - 0.5).abs() < 0.05, "cv={cv}");
    }

    #[test]
    fn lognormal_zero_cv_is_deterministic() {
        let mut r = DetRng::new(5);
        assert_eq!(r.lognormal_mean_cv(7.5, 0.0), 7.5);
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut r = DetRng::new(6);
        for _ in 0..1_000 {
            let v = r.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
            let u = r.uniform_u64(5, 9);
            assert!((5..=9).contains(&u));
        }
    }

    /// Dropout masks decide `keep` via `(bits64() >> 11) < ceil(p·2⁵³)` as a
    /// conversion-free version of `unit() < p`; the two must agree draw for
    /// draw (unit() is the top 53 bits of one 64-bit draw, scaled by 2⁻⁵³,
    /// and scaling `p` by the power of two 2⁵³ is exact).
    #[test]
    fn bits64_high_bits_match_unit_decisions() {
        for &p in &[0.75, 0.5, 0.9, 1.0 / 3.0, 0.123456, 0.999] {
            let mut a = DetRng::new(99);
            let mut b = a.clone();
            let thresh = (p * (1u64 << 53) as f64).ceil() as u64;
            for _ in 0..4000 {
                assert_eq!(a.unit() < p, b.bits64() >> 11 < thresh, "p={p}");
            }
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(7);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
