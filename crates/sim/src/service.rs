//! Per-service runtime state: replicas, pending queue and observability.

use std::collections::VecDeque;

use graf_metrics::{CpuAccount, RateCounter, WindowedLatency};

use crate::frame::FrameId;
use crate::loadidx::MinLoadTree;
use crate::station::InstanceId;
use crate::time::SimTime;
use crate::topology::ServiceSpec;

/// Runtime state of one microservice: its replicas plus the metric surfaces
/// the paper's collectors expose (cAdvisor CPU, per-service latency, perceived
/// workload).
#[derive(Debug)]
pub struct ServiceRuntime {
    /// Static spec.
    pub spec: ServiceSpec,
    /// All live replicas (starting, ready and draining).
    pub instances: Vec<InstanceId>,
    /// Frames waiting because no replica is ready.
    pub pending: VecDeque<FrameId>,
    /// CPU usage vs quota (utilization source for the HPA baseline).
    pub cpu: CpuAccount,
    /// Per-service span latency windows.
    pub latency: WindowedLatency,
    /// Arrivals per window — the "perceived workload" of Figure 7.
    pub arrivals: RateCounter,
    /// Active contention windows: `(from_us, until_us, work multiplier)`.
    /// While a window covers the current time, every request's CPU demand is
    /// multiplied — the §6 "unexpected contention in resources" anomaly.
    pub slowdowns: Vec<(u64, u64, f64)>,
    /// Min-load index over this service's ready replicas; reproduces the
    /// `min_by_key((jobs, id))` dispatch scan in O(log n).
    pub load: MinLoadTree,
}

impl ServiceRuntime {
    /// Creates runtime state with the given observation windows.
    pub fn new(spec: ServiceSpec, window_us: u64, retain: usize) -> Self {
        Self {
            spec,
            instances: Vec::new(),
            pending: VecDeque::new(),
            cpu: CpuAccount::new(),
            latency: WindowedLatency::new(window_us, retain),
            arrivals: RateCounter::new(window_us, retain),
            slowdowns: Vec::new(),
            load: MinLoadTree::new(),
        }
    }

    /// The contention work-multiplier in effect at `t_us` (1.0 = none).
    pub fn slowdown_at(&self, t_us: u64) -> f64 {
        if self.slowdowns.is_empty() {
            return 1.0;
        }
        self.slowdowns
            .iter()
            .filter(|&&(from, until, _)| t_us >= from && t_us < until)
            .map(|&(_, _, f)| f)
            .fold(1.0, f64::max)
    }

    /// Records that a frame arrived at this service.
    pub fn record_arrival(&mut self, now: SimTime) {
        self.arrivals.record(now.as_micros());
    }

    /// Records a completed span's latency.
    pub fn record_latency(&mut self, now: SimTime, latency_us: u64) {
        self.latency.record(now.as_micros(), latency_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ServiceSpec;

    #[test]
    fn records_flow_into_metrics() {
        let mut s = ServiceRuntime::new(ServiceSpec::new("svc", 1.0, 0), 1_000_000, 8);
        s.record_arrival(SimTime(10));
        s.record_arrival(SimTime(20));
        s.record_latency(SimTime(30), 500);
        assert_eq!(s.arrivals.count_trailing(30, 1), 2);
        assert_eq!(s.latency.percentile_trailing(30, 1, 0.5), Some(500));
        assert!(s.pending.is_empty());
        assert!(s.instances.is_empty());
    }
}
