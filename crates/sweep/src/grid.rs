//! Declarative scenario grids and their expansion into cells.
//!
//! A grid is an ordered list of named axes, each with one or more string
//! values. The textual form is `axis=v1,v2;axis2=v3,...`:
//!
//! ```
//! use graf_sweep::Grid;
//!
//! let g = Grid::parse("app=boutique,social;slo=60,90;policy=hpa").unwrap();
//! assert_eq!(g.num_cells(), 4);
//! let cells = g.cells();
//! assert_eq!(cells[0].key(), "app=boutique/policy=hpa/slo=60");
//! assert_eq!(cells[0].get("slo"), Some("60"));
//! ```
//!
//! Expansion is row-major in axis declaration order (the last axis varies
//! fastest), but nothing downstream depends on that order: cell *keys* list
//! axes sorted by name, so seeds and report ordering are invariant to how
//! the spec happens to be written.

/// One grid axis: a name and its values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Axis {
    /// Axis name, e.g. `app`.
    pub name: String,
    /// The values the axis sweeps over, in declaration order.
    pub values: Vec<String>,
}

/// A declarative scenario grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Grid {
    axes: Vec<Axis>,
}

/// Characters with structural meaning in grid specs and cell keys.
const RESERVED: &[char] = &['=', ',', ';', '/', '"', '\\'];

fn check_token(kind: &str, tok: &str) -> Result<(), String> {
    if tok.is_empty() {
        return Err(format!("empty {kind} in grid spec"));
    }
    if let Some(c) = tok.chars().find(|c| RESERVED.contains(c) || c.is_whitespace()) {
        return Err(format!("{kind} {tok:?} contains reserved character {c:?}"));
    }
    Ok(())
}

impl Grid {
    /// Parses a grid spec of the form `axis=v1,v2;axis2=v3`.
    ///
    /// Axis names must be unique; names and values must be non-empty and
    /// free of the structural characters `= , ; /` and whitespace.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut axes: Vec<Axis> = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, values) = part
                .split_once('=')
                .ok_or_else(|| format!("axis {part:?} is not of the form name=v1,v2"))?;
            let name = name.trim();
            check_token("axis name", name)?;
            if axes.iter().any(|a| a.name == name) {
                return Err(format!("duplicate axis {name:?}"));
            }
            let mut vals: Vec<String> = Vec::new();
            for v in values.split(',') {
                let v = v.trim();
                check_token("axis value", v)?;
                if vals.iter().any(|x| x == v) {
                    return Err(format!("duplicate value {v:?} on axis {name:?}"));
                }
                vals.push(v.to_string());
            }
            axes.push(Axis { name: name.to_string(), values: vals });
        }
        if axes.is_empty() {
            return Err("grid spec has no axes".to_string());
        }
        Ok(Self { axes })
    }

    /// The axes in declaration order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Number of cells the grid expands to (product of axis sizes).
    pub fn num_cells(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Expands the grid into cells, row-major in declaration order (the last
    /// axis varies fastest).
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::with_capacity(self.num_cells());
        let mut idx = vec![0usize; self.axes.len()];
        loop {
            let pairs: Vec<(String, String)> = self
                .axes
                .iter()
                .zip(&idx)
                .map(|(a, &i)| (a.name.clone(), a.values[i].clone()))
                .collect();
            out.push(Cell::new(pairs));
            // Odometer increment, last axis fastest.
            let mut k = self.axes.len();
            loop {
                if k == 0 {
                    return out;
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] < self.axes[k].values.len() {
                    break;
                }
                idx[k] = 0;
            }
        }
    }
}

/// One cell of an expanded grid: an assignment of one value per axis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// `(axis, value)` pairs sorted by axis name (the canonical order).
    pairs: Vec<(String, String)>,
}

impl Cell {
    /// Builds a cell from `(axis, value)` pairs (any order; stored sorted by
    /// axis name so keys are canonical).
    pub fn new(mut pairs: Vec<(String, String)>) -> Self {
        pairs.sort();
        Self { pairs }
    }

    /// The value assigned to `axis`, if the cell has that axis.
    pub fn get(&self, axis: &str) -> Option<&str> {
        self.pairs.iter().find(|(a, _)| a == axis).map(|(_, v)| v.as_str())
    }

    /// The `(axis, value)` pairs, sorted by axis name.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }

    /// The canonical cell key: `axis=value` pairs sorted by axis name and
    /// joined with `/`, e.g. `app=boutique/policy=hpa/slo=60`. Seeds and
    /// report ordering both key off this string.
    pub fn key(&self) -> String {
        let parts: Vec<String> = self.pairs.iter().map(|(a, v)| format!("{a}={v}")).collect();
        parts.join("/")
    }

    /// Parses a cell back out of its canonical key.
    pub fn from_key(key: &str) -> Result<Self, String> {
        let mut pairs = Vec::new();
        for part in key.split('/') {
            let (a, v) =
                part.split_once('=').ok_or_else(|| format!("bad cell-key part {part:?}"))?;
            check_token("axis name", a)?;
            check_token("axis value", v)?;
            pairs.push((a.to_string(), v.to_string()));
        }
        if pairs.is_empty() {
            return Err("empty cell key".to_string());
        }
        Ok(Self::new(pairs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_expands_row_major() {
        let g = Grid::parse("a=1,2;b=x,y,z").unwrap();
        assert_eq!(g.num_cells(), 6);
        let cells = g.cells();
        assert_eq!(cells.len(), 6);
        // Last axis fastest.
        assert_eq!(cells[0].key(), "a=1/b=x");
        assert_eq!(cells[1].key(), "a=1/b=y");
        assert_eq!(cells[3].key(), "a=2/b=x");
    }

    #[test]
    fn keys_are_invariant_to_axis_declaration_order() {
        let g1 = Grid::parse("a=1;b=x").unwrap();
        let g2 = Grid::parse("b=x;a=1").unwrap();
        assert_eq!(g1.cells()[0].key(), g2.cells()[0].key());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(Grid::parse("").is_err());
        assert!(Grid::parse("a").is_err());
        assert!(Grid::parse("a=").is_err());
        assert!(Grid::parse("a=1;a=2").is_err());
        assert!(Grid::parse("a=1,1").is_err());
        assert!(Grid::parse("a=x/y").is_err());
        assert!(Grid::parse("a b=1").is_err());
    }

    #[test]
    fn tolerates_spacing_and_trailing_separators() {
        let g = Grid::parse(" a = 1 , 2 ; b = x ; ").unwrap();
        assert_eq!(g.num_cells(), 2);
        assert_eq!(g.cells()[0].key(), "a=1/b=x");
    }

    #[test]
    fn cell_key_round_trips() {
        let c = Cell::new(vec![("b".into(), "y".into()), ("a".into(), "1".into())]);
        assert_eq!(c.key(), "a=1/b=y");
        assert_eq!(Cell::from_key(&c.key()).unwrap(), c);
        assert!(Cell::from_key("nokey").is_err());
        assert!(Cell::from_key("").is_err());
    }
}
