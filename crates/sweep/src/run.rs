//! The sharded fleet: expanding a grid, assigning cells to workers, and
//! draining every cell with per-worker JSONL streaming.
//!
//! Sharding is round-robin by expansion index (`cell i → worker i mod W`) —
//! but nothing downstream may depend on that: cell seeds derive from cell
//! keys ([`crate::seed::derive_seed`]), and [`crate::report::aggregate`]
//! re-orders records canonically, so the shard map is pure load balancing.

use std::path::{Path, PathBuf};

use graf_obs::JsonlSink;

use crate::grid::{Cell, Grid};
use crate::record::{CellRecord, CellResult};
use crate::seed::derive_seed;

/// Fleet configuration.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Worker threads (≥ 1). Affects wall-clock only, never results.
    pub workers: usize,
    /// The grid seed every cell seed derives from.
    pub grid_seed: u64,
    /// When set, worker `w` streams its records to
    /// `<dir>/worker-<w>.jsonl` as cells complete.
    pub worker_log_dir: Option<PathBuf>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self { workers: 1, grid_seed: 7, worker_log_dir: None }
    }
}

/// What one worker produced: its index, its records (in the worker's own
/// completion order), and the stream file it wrote (if any).
#[derive(Debug)]
pub struct WorkerReport {
    /// Worker index in `0..workers`.
    pub worker: usize,
    /// Records for the worker's cells, in shard order.
    pub records: Vec<CellRecord>,
    /// Path of the per-worker JSONL stream, when streaming was enabled.
    pub log_path: Option<PathBuf>,
}

/// Path of worker `w`'s stream file under `dir`.
pub fn worker_log_path(dir: &Path, worker: usize) -> PathBuf {
    dir.join(format!("worker-{worker}.jsonl"))
}

/// Runs every cell of `grid` across `cfg.workers` threads.
///
/// `make_runner` is called once per worker (with the worker index) to build
/// that worker's cell evaluator — per-worker state like a trained-model
/// cache lives inside the returned closure. The evaluator gets each cell
/// plus its derived seed and returns the cell's metrics, or an error that
/// becomes an error record (the sweep keeps going either way).
///
/// Records are returned per worker; use [`crate::report::aggregate`] to
/// merge them into the canonical report.
pub fn run_sweep<F, R>(grid: &Grid, cfg: &SweepConfig, make_runner: F) -> Vec<WorkerReport>
where
    F: Fn(usize) -> R + Sync,
    R: FnMut(&Cell, u64) -> Result<CellResult, String> + Send,
{
    let workers = cfg.workers.max(1);
    let cells = grid.cells();
    // Round-robin shard assignment by expansion index.
    let mut shards: Vec<Vec<Cell>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, cell) in cells.into_iter().enumerate() {
        shards[i % workers].push(cell);
    }

    let grid_seed = cfg.grid_seed;
    let log_dir = cfg.worker_log_dir.as_deref();
    let make_runner = &make_runner;

    let mut reports: Vec<WorkerReport> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (w, shard) in shards.into_iter().enumerate() {
            let mut runner = make_runner(w);
            handles.push(scope.spawn(move || {
                let log_path = log_dir.map(|d| worker_log_path(d, w));
                let mut sink = log_path.as_deref().map(|p| {
                    JsonlSink::create(p)
                        .unwrap_or_else(|e| panic!("worker {w}: cannot open {p:?}: {e}"))
                });
                let mut records = Vec::with_capacity(shard.len());
                for cell in &shard {
                    let key = cell.key();
                    let seed = derive_seed(grid_seed, &key);
                    let record = match runner(cell, seed) {
                        Ok(result) => CellRecord::ok(key, seed, result),
                        Err(e) => CellRecord::failed(key, seed, e),
                    };
                    if let Some(sink) = sink.as_mut() {
                        sink.record(&record.to_json())
                            .unwrap_or_else(|e| panic!("worker {w}: writing stream record: {e}"));
                    }
                    records.push(record);
                }
                if let Some(sink) = sink {
                    sink.finish().unwrap_or_else(|e| panic!("worker {w}: closing stream: {e}"));
                }
                WorkerReport { worker: w, records, log_path }
            }));
        }
        handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
    });
    reports.sort_by_key(|r| r.worker);
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::aggregate;

    /// A deterministic fake cell evaluator: metrics derived from the seed.
    fn fake_runner(_worker: usize) -> impl FnMut(&Cell, u64) -> Result<CellResult, String> {
        |cell: &Cell, seed: u64| {
            if cell.get("v") == Some("bad") {
                return Err("synthetic failure".to_string());
            }
            let mut r = CellResult::default();
            r.push("seed_lo", (seed % 1000) as f64);
            r.push("axes", cell.pairs().len() as f64);
            Ok(r)
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let grid = Grid::parse("a=1,2,3;v=x,y").unwrap();
        let cfg = SweepConfig { workers: 4, ..Default::default() };
        let reports = run_sweep(&grid, &cfg, fake_runner);
        let total: usize = reports.iter().map(|r| r.records.len()).sum();
        assert_eq!(total, 6);
        let mut keys: Vec<String> =
            reports.iter().flat_map(|r| r.records.iter().map(|c| c.cell.clone())).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 6, "no duplicates, no drops");
    }

    #[test]
    fn worker_count_does_not_change_the_aggregate() {
        let grid = Grid::parse("a=1,2,3,4,5;b=p,q,r").unwrap();
        let agg = |workers: usize| {
            let cfg = SweepConfig { workers, ..Default::default() };
            let reports = run_sweep(&grid, &cfg, fake_runner);
            let records: Vec<CellRecord> = reports.into_iter().flat_map(|r| r.records).collect();
            aggregate(records).expect("no duplicate cells")
        };
        let one = agg(1);
        assert_eq!(one, agg(3), "1 vs 3 workers");
        assert_eq!(one, agg(16), "1 vs 16 workers (more workers than cells)");
    }

    #[test]
    fn failures_become_error_records_and_do_not_abort() {
        let grid = Grid::parse("a=1,2;v=ok,bad").unwrap();
        let cfg = SweepConfig { workers: 2, ..Default::default() };
        let reports = run_sweep(&grid, &cfg, fake_runner);
        let records: Vec<&CellRecord> = reports.iter().flat_map(|r| r.records.iter()).collect();
        assert_eq!(records.len(), 4);
        let failed: Vec<_> = records.iter().filter(|r| r.error.is_some()).collect();
        assert_eq!(failed.len(), 2, "both v=bad cells failed");
        assert!(records.iter().filter(|r| r.result.is_some()).count() == 2);
    }

    #[test]
    fn streaming_writes_one_file_per_worker() {
        let dir = std::env::temp_dir().join(format!("graf-sweep-run-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let grid = Grid::parse("a=1,2,3").unwrap();
        let cfg = SweepConfig { workers: 2, worker_log_dir: Some(dir.clone()), grid_seed: 7 };
        let reports = run_sweep(&grid, &cfg, fake_runner);
        for r in &reports {
            let path = r.log_path.as_ref().expect("streaming enabled");
            let text = std::fs::read_to_string(path).unwrap();
            assert_eq!(text.lines().count(), r.records.len());
            for (line, rec) in text.lines().zip(&r.records) {
                assert_eq!(line, rec.to_json(), "stream matches in-memory record");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
