//! Aggregation and cross-revision comparison of sweep records.
//!
//! [`aggregate`] is the determinism keystone: it merges per-worker record
//! sets into one report ordered by cell key with canonical serialization,
//! so the output is byte-identical for a given set of results no matter how
//! many workers produced them or how cells were sharded.

use std::collections::BTreeMap;

use crate::record::CellRecord;

/// Merges records from any number of workers into the canonical aggregated
/// report: one JSONL line per cell, ordered by cell key, each line in the
/// canonical serialization of [`CellRecord::to_json`]. Ends with a newline.
///
/// Errors if two records claim the same cell — that means the sharder
/// double-assigned a cell and the sweep is unsound.
pub fn aggregate(records: Vec<CellRecord>) -> Result<String, String> {
    let mut by_key: BTreeMap<String, CellRecord> = BTreeMap::new();
    for r in records {
        let key = r.cell.clone();
        if by_key.insert(key.clone(), r).is_some() {
            return Err(format!("duplicate record for cell {key:?}"));
        }
    }
    let mut out = String::new();
    for r in by_key.values() {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    Ok(out)
}

/// Renders an aggregated record set as a human-readable table: one row per
/// cell, the union of metric names as columns, `-` for gaps, `FAILED` rows
/// for error records. Rows follow aggregation order (sorted by cell key).
pub fn render_table(records: &[CellRecord]) -> String {
    let mut rows: Vec<&CellRecord> = records.iter().collect();
    rows.sort_by(|a, b| a.cell.cmp(&b.cell));
    let mut columns: Vec<String> = Vec::new();
    for r in &rows {
        if let Some(result) = &r.result {
            for (name, _) in &result.metrics {
                if !columns.contains(name) {
                    columns.push(name.clone());
                }
            }
        }
    }
    columns.sort();

    let fmt_val = |v: f64| {
        if v == v.trunc() && v.abs() < 1e12 {
            format!("{v:.0}")
        } else {
            format!("{v:.3}")
        }
    };
    let mut header: Vec<String> = vec!["cell".to_string()];
    header.extend(columns.iter().cloned());
    let mut table: Vec<Vec<String>> = vec![header];
    for r in &rows {
        let mut row = vec![r.cell.clone()];
        match (&r.result, &r.error) {
            (Some(result), _) => {
                for c in &columns {
                    row.push(result.get(c).map(fmt_val).unwrap_or_else(|| "-".to_string()));
                }
            }
            (None, Some(e)) => {
                row.push(format!("FAILED: {e}"));
                row.extend(std::iter::repeat_n("-".to_string(), columns.len().saturating_sub(1)));
            }
            (None, None) => row.extend(std::iter::repeat_n("-".to_string(), columns.len())),
        }
        table.push(row);
    }

    let cols = table.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in &table {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in table.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            if i + 1 < row.len() {
                for _ in cell.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
            out.extend(std::iter::repeat_n('-', total));
            out.push('\n');
        }
    }
    out
}

/// Per-cell verdict of a [`compare`] run.
#[derive(Clone, Debug, PartialEq)]
pub enum CellVerdict {
    /// Gate metric moved against us by more than the threshold.
    Regressed {
        /// Gate metric value at the base revision.
        base: f64,
        /// Gate metric value at the new revision.
        new: f64,
        /// Relative change in percent (positive = worse).
        delta_pct: f64,
    },
    /// Gate metric moved in our favor by more than the threshold.
    Improved {
        /// Gate metric value at the base revision.
        base: f64,
        /// Gate metric value at the new revision.
        new: f64,
        /// Relative change in percent (negative = better).
        delta_pct: f64,
    },
    /// Within threshold either way.
    Unchanged {
        /// Gate metric value at the base revision.
        base: f64,
        /// Gate metric value at the new revision.
        new: f64,
    },
    /// The cell failed at one or both revisions, or the gate metric is
    /// missing/sentinel (`< 0`) at one or both.
    Incomparable {
        /// Why the cell could not be compared.
        why: String,
    },
}

/// Outcome of comparing one revision's sweep against another's.
#[derive(Debug, Default)]
pub struct SweepCompareReport {
    /// `(cell key, verdict)` pairs, ordered by cell key.
    pub rows: Vec<(String, CellVerdict)>,
    /// Cells recorded only at the base revision.
    pub only_base: Vec<String>,
    /// Cells recorded only at the new revision.
    pub only_new: Vec<String>,
}

impl SweepCompareReport {
    /// True if any cell regressed.
    pub fn has_regressions(&self) -> bool {
        self.rows.iter().any(|(_, v)| matches!(v, CellVerdict::Regressed { .. }))
    }

    /// True if the two revisions did not sweep the same cell set.
    pub fn has_coverage_gaps(&self) -> bool {
        !self.only_base.is_empty() || !self.only_new.is_empty()
    }
}

/// True when `rev` identifies `recorded`: exact match, or an unambiguous
/// SHA prefix of at least 7 characters (either direction).
fn rev_matches(recorded: &str, rev: &str) -> bool {
    if recorded == rev {
        return true;
    }
    let (long, short) = if recorded.len() >= rev.len() { (recorded, rev) } else { (rev, recorded) };
    short.len() >= 7 && long.starts_with(short)
}

/// Latest record per cell for one revision. History files are append-only,
/// so "latest" means last occurrence in file order.
fn latest_by_cell<'a>(history: &'a [CellRecord], rev: &str) -> BTreeMap<&'a str, &'a CellRecord> {
    let mut out: BTreeMap<&str, &CellRecord> = BTreeMap::new();
    for r in history {
        if r.rev.as_deref().is_some_and(|rr| rev_matches(rr, rev)) {
            out.insert(&r.cell, r);
        }
    }
    out
}

/// Compares the sweeps of two revisions recorded in `history`, judging each
/// shared cell on the `gate` metric (where *higher is worse* — latency,
/// timeouts, instance counts). A cell regresses when the gate worsens by
/// more than `threshold_pct` percent relative to base.
pub fn compare(
    history: &[CellRecord],
    rev_base: &str,
    rev_new: &str,
    gate: &str,
    threshold_pct: f64,
) -> SweepCompareReport {
    let base = latest_by_cell(history, rev_base);
    let new = latest_by_cell(history, rev_new);

    let mut report = SweepCompareReport::default();
    for (&cell, base_rec) in &base {
        let Some(new_rec) = new.get(cell) else {
            report.only_base.push(cell.to_string());
            continue;
        };
        let verdict = judge(base_rec, new_rec, gate, threshold_pct);
        report.rows.push((cell.to_string(), verdict));
    }
    for &cell in new.keys() {
        if !base.contains_key(cell) {
            report.only_new.push(cell.to_string());
        }
    }
    report
}

fn judge(base: &CellRecord, new: &CellRecord, gate: &str, threshold_pct: f64) -> CellVerdict {
    if let Some(e) = &base.error {
        return CellVerdict::Incomparable { why: format!("base failed: {e}") };
    }
    if let Some(e) = &new.error {
        return CellVerdict::Incomparable { why: format!("new failed: {e}") };
    }
    let bv = base.result.as_ref().and_then(|r| r.get(gate));
    let nv = new.result.as_ref().and_then(|r| r.get(gate));
    let (Some(bv), Some(nv)) = (bv, nv) else {
        return CellVerdict::Incomparable { why: format!("gate metric {gate:?} missing") };
    };
    if bv < 0.0 || nv < 0.0 {
        return CellVerdict::Incomparable {
            why: format!("gate metric {gate:?} is sentinel (base {bv}, new {nv})"),
        };
    }
    if bv == 0.0 && nv == 0.0 {
        return CellVerdict::Unchanged { base: bv, new: nv };
    }
    // Relative to base; a zero base with a nonzero new value is an infinite
    // relative change, which we clamp to a definitely-over-threshold value.
    let delta_pct = if bv > 0.0 { (nv - bv) / bv * 100.0 } else { f64::INFINITY };
    if delta_pct > threshold_pct {
        CellVerdict::Regressed { base: bv, new: nv, delta_pct }
    } else if delta_pct < -threshold_pct {
        CellVerdict::Improved { base: bv, new: nv, delta_pct }
    } else {
        CellVerdict::Unchanged { base: bv, new: nv }
    }
}

/// Renders a compare report as human-readable text.
pub fn render_compare(report: &SweepCompareReport, gate: &str) -> String {
    let mut out = String::new();
    for (cell, verdict) in &report.rows {
        match verdict {
            CellVerdict::Regressed { base, new, delta_pct } => {
                out.push_str(&format!(
                    "REGRESSED  {cell}  {gate} {base:.3} -> {new:.3}  ({delta_pct:+.1}%)\n"
                ));
            }
            CellVerdict::Improved { base, new, delta_pct } => {
                out.push_str(&format!(
                    "improved   {cell}  {gate} {base:.3} -> {new:.3}  ({delta_pct:+.1}%)\n"
                ));
            }
            CellVerdict::Unchanged { base, new } => {
                out.push_str(&format!("unchanged  {cell}  {gate} {base:.3} -> {new:.3}\n"));
            }
            CellVerdict::Incomparable { why } => {
                out.push_str(&format!("n/a        {cell}  {why}\n"));
            }
        }
    }
    for cell in &report.only_base {
        out.push_str(&format!("only-base  {cell}\n"));
    }
    for cell in &report.only_new {
        out.push_str(&format!("only-new   {cell}\n"));
    }
    if report.rows.is_empty() && !report.has_coverage_gaps() {
        out.push_str("no overlapping cells\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CellResult;

    fn rec(rev: &str, cell: &str, gate: f64) -> CellRecord {
        let mut r = CellResult::default();
        r.push("p99_ms", gate);
        r.push("completed", 100.0);
        let mut record = CellRecord::ok(cell.to_string(), 1, r);
        record.rev = Some(rev.to_string());
        record
    }

    #[test]
    fn aggregate_sorts_by_cell_and_rejects_duplicates() {
        let records = vec![rec("x", "b=2", 1.0), rec("x", "a=1", 2.0)];
        let out = aggregate(records).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("a=1"));
        assert!(lines[1].contains("b=2"));
        assert!(out.ends_with('\n'));

        let dup = vec![rec("x", "a=1", 1.0), rec("x", "a=1", 2.0)];
        assert!(aggregate(dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn aggregate_is_input_order_invariant() {
        let a = vec![rec("x", "a=1", 1.0), rec("x", "b=2", 2.0), rec("x", "c=3", 3.0)];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(aggregate(a).unwrap(), aggregate(b).unwrap());
    }

    #[test]
    fn compare_classifies_cells() {
        let history = vec![
            rec("aaaaaaaa", "c=reg", 100.0),
            rec("aaaaaaaa", "c=imp", 100.0),
            rec("aaaaaaaa", "c=same", 100.0),
            rec("aaaaaaaa", "c=gone", 1.0),
            rec("bbbbbbbb", "c=reg", 120.0),
            rec("bbbbbbbb", "c=imp", 80.0),
            rec("bbbbbbbb", "c=same", 101.0),
            rec("bbbbbbbb", "c=fresh", 1.0),
        ];
        let report = compare(&history, "aaaaaaaa", "bbbbbbbb", "p99_ms", 10.0);
        let verdict = |cell: &str| {
            report.rows.iter().find(|(c, _)| c == cell).map(|(_, v)| v.clone()).unwrap()
        };
        assert!(matches!(verdict("c=reg"), CellVerdict::Regressed { .. }));
        assert!(matches!(verdict("c=imp"), CellVerdict::Improved { .. }));
        assert!(matches!(verdict("c=same"), CellVerdict::Unchanged { .. }));
        assert_eq!(report.only_base, vec!["c=gone"]);
        assert_eq!(report.only_new, vec!["c=fresh"]);
        assert!(report.has_regressions());
        assert!(report.has_coverage_gaps());
    }

    #[test]
    fn compare_latest_record_per_cell_wins() {
        let history = vec![
            rec("aaaaaaaa", "c=1", 100.0),
            rec("bbbbbbbb", "c=1", 500.0),
            rec("bbbbbbbb", "c=1", 100.0), // a rerun fixed it
        ];
        let report = compare(&history, "aaaaaaaa", "bbbbbbbb", "p99_ms", 10.0);
        assert!(matches!(report.rows[0].1, CellVerdict::Unchanged { .. }));
    }

    #[test]
    fn compare_tolerates_rev_prefixes() {
        let history =
            vec![rec("0123456789abcdef", "c=1", 100.0), rec("fedcba9876543210", "c=1", 100.0)];
        let report = compare(&history, "0123456", "fedcba987", "p99_ms", 10.0);
        assert_eq!(report.rows.len(), 1);
        // Too-short prefixes must not match.
        let report = compare(&history, "012345", "fedcba987", "p99_ms", 10.0);
        assert!(report.rows.is_empty());
    }

    #[test]
    fn failed_and_sentinel_cells_are_incomparable() {
        let mut failed = CellRecord::failed("c=1".into(), 1, "boom".into());
        failed.rev = Some("aaaaaaaa".into());
        let history = vec![
            failed,
            rec("bbbbbbbb", "c=1", 100.0),
            rec("aaaaaaaa", "c=2", -1.0),
            rec("bbbbbbbb", "c=2", 50.0),
        ];
        let report = compare(&history, "aaaaaaaa", "bbbbbbbb", "p99_ms", 10.0);
        assert!(report.rows.iter().all(|(_, v)| matches!(v, CellVerdict::Incomparable { .. })));
        assert!(!report.has_regressions());
    }

    #[test]
    fn zero_base_with_nonzero_new_regresses() {
        let history = vec![rec("aaaaaaaa", "c=1", 0.0), rec("bbbbbbbb", "c=1", 5.0)];
        let report = compare(&history, "aaaaaaaa", "bbbbbbbb", "p99_ms", 10.0);
        assert!(report.has_regressions());
    }

    #[test]
    fn table_renders_all_metrics_and_failures() {
        let mut failed = CellRecord::failed("a=2".into(), 1, "boom".into());
        failed.rev = None;
        let records = vec![rec("x", "a=1", 42.0), failed];
        let table = render_table(&records);
        assert!(table.contains("p99_ms"));
        assert!(table.contains("completed"));
        assert!(table.contains("FAILED: boom"));
        let header = table.lines().next().unwrap();
        assert!(header.starts_with("cell"));
    }
}
