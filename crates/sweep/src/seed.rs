//! Deterministic per-cell seed derivation.
//!
//! Every cell's seed is a pure function of `(grid_seed, cell key)` — the
//! canonical key string, never the cell's index or shard. The discipline
//! this buys:
//!
//! * rerunning one cell in isolation reproduces the fleet's result,
//! * adding axes or values to a grid leaves every pre-existing cell's seed
//!   (and therefore its result) untouched,
//! * worker count and shard assignment cannot leak into the simulation.
//!
//! The derivation is FNV-1a over the key bytes, mixed with the grid seed
//! through splitmix64 — the same finalizer family the simulator's `DetRng`
//! uses, so distinct cells land in well-separated streams.

/// 64-bit FNV-1a of `bytes`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// splitmix64's output finalizer: a strong 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives the deterministic seed for the cell with canonical key
/// `cell_key` under `grid_seed`.
pub fn derive_seed(grid_seed: u64, cell_key: &str) -> u64 {
    mix(fnv1a(cell_key.as_bytes()) ^ mix(grid_seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_depends_on_key_and_grid_seed() {
        let a = derive_seed(7, "app=boutique/slo=60");
        assert_eq!(a, derive_seed(7, "app=boutique/slo=60"), "deterministic");
        assert_ne!(a, derive_seed(8, "app=boutique/slo=60"), "grid seed matters");
        assert_ne!(a, derive_seed(7, "app=boutique/slo=90"), "key matters");
    }

    #[test]
    fn nearby_keys_get_well_separated_seeds() {
        // Single-character key edits must flip roughly half the bits.
        let a = derive_seed(7, "slo=60");
        let b = derive_seed(7, "slo=61");
        let differing = (a ^ b).count_ones();
        assert!((16..=48).contains(&differing), "only {differing} bits differ");
    }

    #[test]
    fn pinned_values_guard_the_derivation() {
        // Changing the hash silently would re-seed every sweep cell in every
        // committed history; pin two reference points.
        assert_eq!(derive_seed(0, "a=1"), 0xc4d9d0b00f0c9ec3);
        assert_eq!(derive_seed(7, "app=boutique/policy=hpa/slo=60/surge=none"), 0x1d248e99311bc34e);
    }
}
