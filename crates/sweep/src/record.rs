//! Per-cell result records and their canonical JSONL form.
//!
//! A record is one line of a sweep stream. The serialization is canonical —
//! metrics sorted by name, fixed field order, shortest-round-trip number
//! formatting — so the aggregated report is byte-identical whenever the
//! underlying results are, regardless of which worker produced each line.

use graf_obs::json::{self, Json};

/// The outcome of evaluating one cell: named scalar metrics.
///
/// Metrics are `f64` by convention; results that can be absent (a p99 with
/// no completions, a convergence time that never converged) use the sentinel
/// `-1.0` rather than NaN, because JSON cannot represent NaN and `null`
/// would make records non-uniform across cells.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CellResult {
    /// `(metric name, value)` pairs. Serialized sorted by name.
    pub metrics: Vec<(String, f64)>,
}

impl CellResult {
    /// Adds one metric.
    pub fn push(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// One line of a sweep stream: a cell key, its derived seed, and either the
/// cell's metrics or the error that prevented them.
#[derive(Clone, Debug, PartialEq)]
pub struct CellRecord {
    /// Optional git revision tag (present in history files, absent in
    /// per-run streams).
    pub rev: Option<String>,
    /// Canonical cell key (axes sorted by name).
    pub cell: String,
    /// The seed derived from `(grid_seed, cell)`.
    pub seed: u64,
    /// Metrics, when the cell ran to completion.
    pub result: Option<CellResult>,
    /// The failure message, when it did not.
    pub error: Option<String>,
}

impl CellRecord {
    /// A successful record.
    pub fn ok(cell: String, seed: u64, result: CellResult) -> Self {
        Self { rev: None, cell, seed, result: Some(result), error: None }
    }

    /// A failed record.
    pub fn failed(cell: String, seed: u64, error: String) -> Self {
        Self { rev: None, cell, seed, result: None, error: Some(error) }
    }

    /// Serializes to one canonical JSONL line (no trailing newline): fields
    /// in fixed order, metrics sorted by name.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push('{');
        if let Some(rev) = &self.rev {
            out.push_str("\"rev\": ");
            json::write_str(&mut out, rev);
            out.push_str(", ");
        }
        out.push_str("\"cell\": ");
        json::write_str(&mut out, &self.cell);
        out.push_str(&format!(", \"seed\": {}", self.seed));
        if let Some(result) = &self.result {
            out.push_str(", \"metrics\": {");
            let mut metrics = result.metrics.clone();
            metrics.sort_by(|a, b| a.0.cmp(&b.0));
            for (i, (name, value)) in metrics.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                json::write_str(&mut out, name);
                out.push_str(": ");
                json::write_f64(&mut out, *value);
            }
            out.push('}');
        }
        if let Some(error) = &self.error {
            out.push_str(", \"error\": ");
            json::write_str(&mut out, error);
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line. Errors name the missing/ill-typed field.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let doc = json::parse(line)?;
        let cell = doc
            .get("cell")
            .and_then(Json::as_str)
            .ok_or("missing/non-string field \"cell\"")?
            .to_string();
        let seed = doc
            .get("seed")
            .and_then(Json::as_f64)
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .ok_or("missing/non-integer field \"seed\"")? as u64;
        let rev = doc.get("rev").and_then(Json::as_str).map(str::to_string);
        let error = doc.get("error").and_then(Json::as_str).map(str::to_string);
        let result = match doc.get("metrics") {
            Some(Json::Obj(fields)) => {
                let mut r = CellResult::default();
                for (k, v) in fields {
                    let v = v.as_f64().ok_or_else(|| format!("non-number metric {k:?}"))?;
                    r.metrics.push((k.clone(), v));
                }
                Some(r)
            }
            Some(_) => return Err("field \"metrics\" is not an object".to_string()),
            None => None,
        };
        if result.is_none() && error.is_none() {
            return Err("record has neither \"metrics\" nor \"error\"".to_string());
        }
        Ok(Self { rev, cell, seed, result, error })
    }
}

/// Parses a whole JSONL stream, skipping blank lines. Unlike bench history
/// parsing, a malformed line is a hard error: sweep streams are produced by
/// this same tool in the same run, so damage means the sweep is unsound.
pub fn parse_stream(text: &str) -> Result<Vec<CellRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(CellRecord::from_json(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Parses an append-only *history* file (many revisions of this tool may
/// have written it): malformed lines are counted and skipped, not fatal.
pub fn parse_history(text: &str) -> (Vec<CellRecord>, usize) {
    let mut out = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match CellRecord::from_json(line) {
            Ok(r) => out.push(r),
            Err(_) => skipped += 1,
        }
    }
    (out, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> CellRecord {
        let mut r = CellResult::default();
        r.push("p99_ms", 45.25);
        r.push("completed", 12345.0);
        CellRecord::ok("app=boutique/slo=60".into(), 0xDEAD, r)
    }

    #[test]
    fn round_trips_through_jsonl() {
        let r = record();
        let line = r.to_json();
        let mut back = CellRecord::from_json(&line).unwrap();
        // Serialization sorts metrics; compare against the sorted original.
        let mut want = r.clone();
        want.result.as_mut().unwrap().metrics.sort_by(|a, b| a.0.cmp(&b.0));
        back.result.as_mut().unwrap().metrics.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(back, want);
    }

    #[test]
    fn serialization_is_canonical_under_metric_order() {
        let mut a = CellResult::default();
        a.push("x", 1.0);
        a.push("a", 2.0);
        let mut b = CellResult::default();
        b.push("a", 2.0);
        b.push("x", 1.0);
        let ra = CellRecord::ok("c=1".into(), 1, a);
        let rb = CellRecord::ok("c=1".into(), 1, b);
        assert_eq!(ra.to_json(), rb.to_json());
    }

    #[test]
    fn error_records_round_trip() {
        let r = CellRecord::failed("c=1".into(), 9, "policy \"bogus\" unknown".into());
        let back = CellRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert!(back.result.is_none());
    }

    #[test]
    fn rev_tag_round_trips() {
        let mut r = record();
        r.rev = Some("abc123".into());
        let back = CellRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(back.rev.as_deref(), Some("abc123"));
    }

    #[test]
    fn stream_parsing_is_strict_history_parsing_is_lenient() {
        let good = record().to_json();
        let text = format!("{good}\n\nnot json\n");
        assert!(parse_stream(&text).is_err());
        let (runs, skipped) = parse_history(&text);
        assert_eq!(runs.len(), 1);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn record_without_metrics_or_error_is_rejected() {
        assert!(CellRecord::from_json(r#"{"cell": "a=1", "seed": 3}"#).is_err());
    }
}
