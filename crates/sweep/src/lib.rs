//! # graf-sweep
//!
//! The sharded scenario-sweep harness (ROADMAP item 2): a declarative
//! scenario grid is expanded into cells, each cell gets a deterministic seed
//! derived from `(grid_seed, cell key)`, and cells are sharded across worker
//! threads with results streamed as JSONL. A single deterministic
//! aggregation step merges the per-worker streams into one ordered report.
//!
//! The crate is scenario-agnostic: axes and values are strings, and the
//! caller supplies the function that evaluates one cell (graf-bench's
//! `sweepgrid` module maps axes like `app`/`slo`/`surge`/`chaos`/`policy`
//! onto actual simulations). This split keeps the fleet machinery reusable
//! for any future grid — topology generators, multi-tenant scenarios,
//! forecasting ablations — without touching the harness.
//!
//! **Invariants.**
//!
//! * *Per-cell seeds are a pure function of `(grid_seed, cell)`* — derived
//!   from the cell's axis assignments (sorted by axis name), never from the
//!   cell's index in the grid or its shard. Adding values to an axis, adding
//!   axes, reordering the grid spec, or changing the worker count never
//!   changes another cell's seed.
//! * *The aggregated report is byte-identical for any worker count and any
//!   shard assignment.* Workers only affect which thread evaluates a cell;
//!   [`report::aggregate`] orders records by cell key and serializes them
//!   canonically.
//! * *A failing cell never aborts the sweep.* Errors become error records in
//!   the same stream; the caller decides the exit code after the fleet
//!   drains (the same keep-going discipline as `run_all_experiments.sh`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod grid;
pub mod record;
pub mod report;
pub mod run;
pub mod seed;

pub use grid::{Axis, Cell, Grid};
pub use record::{CellRecord, CellResult};
pub use report::{
    aggregate, compare, render_compare, render_table, CellVerdict, SweepCompareReport,
};
pub use run::{run_sweep, SweepConfig, WorkerReport};
pub use seed::derive_seed;
