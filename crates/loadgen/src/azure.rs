//! Synthetic Azure-Functions-style invocation series.
//!
//! The paper replays AzurePublicDatasetV2 — per-minute function invocation
//! counts — by spawning "the appropriate number of user threads at every
//! minute" (§5.3, Figure 20). The dataset itself is proprietary-hosted bulk
//! data we do not ship; this module synthesizes a series with the same
//! qualitative features the experiment depends on: minute granularity, a
//! diurnal envelope, short bursts, noise, and a sharp drop late in the window
//! (the paper's Figure 20 shows a collapse around t = 1500 s that exposes the
//! HPA's slow 5-minute scale-down).

use graf_sim::rng::DetRng;

/// Parameters of the synthetic series.
#[derive(Clone, Debug)]
pub struct AzureParams {
    /// Mean user count around which the series oscillates.
    pub mean_users: f64,
    /// Amplitude of the slow (diurnal-like) oscillation, fraction of mean.
    pub swing: f64,
    /// Period of the slow oscillation, in minutes.
    pub period_min: f64,
    /// Multiplicative noise std (lognormal).
    pub noise: f64,
    /// Probability per minute of a burst.
    pub burst_prob: f64,
    /// Burst multiplier.
    pub burst_scale: f64,
    /// Minute at which a sharp drop occurs (`None` to disable).
    pub drop_at_min: Option<usize>,
    /// Fraction of load remaining after the drop.
    pub drop_to: f64,
}

impl Default for AzureParams {
    fn default() -> Self {
        Self {
            mean_users: 55.0,
            swing: 0.35,
            period_min: 18.0,
            noise: 0.10,
            burst_prob: 0.08,
            burst_scale: 1.35,
            drop_at_min: Some(25), // ≈ 1500 s into a 1900 s replay
            drop_to: 0.45,
        }
    }
}

/// Generates a deterministic per-minute user-count series of length `minutes`.
pub fn azure_series(params: &AzureParams, minutes: usize, seed: u64) -> Vec<u32> {
    assert!(params.mean_users > 0.0);
    let mut rng = DetRng::new(seed);
    let mut out = Vec::with_capacity(minutes);
    for m in 0..minutes {
        let phase = (m as f64 / params.period_min) * std::f64::consts::TAU;
        let envelope = 1.0 + params.swing * phase.sin();
        let noise = rng.lognormal_mean_cv(1.0, params.noise);
        let burst = if rng.chance(params.burst_prob) { params.burst_scale } else { 1.0 };
        let dropped = match params.drop_at_min {
            Some(d) if m >= d => params.drop_to,
            _ => 1.0,
        };
        let v = params.mean_users * envelope * noise * burst * dropped;
        out.push(v.round().max(1.0) as u32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_deterministic() {
        let p = AzureParams::default();
        assert_eq!(azure_series(&p, 60, 1), azure_series(&p, 60, 1));
        assert_ne!(azure_series(&p, 60, 1), azure_series(&p, 60, 2));
    }

    #[test]
    fn series_has_requested_length_and_positive_values() {
        let p = AzureParams::default();
        let s = azure_series(&p, 32, 9);
        assert_eq!(s.len(), 32);
        assert!(s.iter().all(|&v| v >= 1));
    }

    #[test]
    fn drop_reduces_load() {
        let p = AzureParams { drop_at_min: Some(10), drop_to: 0.3, ..Default::default() };
        let s = azure_series(&p, 20, 3);
        let before: f64 = s[..10].iter().map(|&v| v as f64).sum::<f64>() / 10.0;
        let after: f64 = s[10..].iter().map(|&v| v as f64).sum::<f64>() / 10.0;
        assert!(after < before * 0.6, "before {before}, after {after}");
    }

    #[test]
    fn swing_produces_variation() {
        let p =
            AzureParams { noise: 0.0, burst_prob: 0.0, drop_at_min: None, ..Default::default() };
        let s = azure_series(&p, 36, 4);
        let max = *s.iter().max().unwrap() as f64;
        let min = *s.iter().min().unwrap() as f64;
        assert!(max / min > 1.5, "diurnal swing visible: {min}..{max}");
    }
}
