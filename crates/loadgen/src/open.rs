//! Open-loop constant-rate load generation (the Vegeta analog).

use graf_sim::rng::DetRng;
use graf_sim::time::SimTime;
use graf_sim::topology::ApiId;

use crate::LoadGen;

/// One API's piecewise-constant rate schedule.
#[derive(Clone, Debug)]
struct Stream {
    api: ApiId,
    /// `(from_us, qps)` segments sorted by time; rate 0 before the first.
    schedule: Vec<(u64, f64)>,
    /// Time of the next arrival to emit, in µs (fractional carry kept in f64).
    next_at: f64,
}

impl Stream {
    fn rate_at(&self, t_us: u64) -> f64 {
        let idx = self.schedule.partition_point(|&(from, _)| from <= t_us);
        if idx == 0 {
            0.0
        } else {
            self.schedule[idx - 1].1
        }
    }
}

/// A Vegeta-like open-loop generator: requests are emitted at a configured
/// rate regardless of response times. Supports multiple APIs, per-API rate
/// schedules, and optional exponential (Poisson) spacing.
pub struct OpenLoop {
    streams: Vec<Stream>,
    poisson: bool,
    rng: DetRng,
}

impl OpenLoop {
    /// Creates a generator with evenly spaced arrivals (Vegeta's default
    /// constant pacing). Use [`OpenLoop::poisson`] for Poisson arrivals.
    pub fn new(seed: u64) -> Self {
        Self { streams: Vec::new(), poisson: false, rng: DetRng::new(seed) }
    }

    /// Switches to exponentially distributed inter-arrival gaps.
    pub fn poisson(mut self) -> Self {
        self.poisson = true;
        self
    }

    /// Adds an API with a constant rate from t = 0.
    pub fn rate(self, api: ApiId, qps: f64) -> Self {
        self.schedule(api, vec![(SimTime::ZERO, qps)])
    }

    /// Adds an API with a piecewise-constant schedule of `(from, qps)` steps.
    pub fn schedule(mut self, api: ApiId, steps: Vec<(SimTime, f64)>) -> Self {
        assert!(!steps.is_empty(), "schedule needs at least one step");
        let mut schedule: Vec<(u64, f64)> =
            // graf-lint: allow(transitive-alloc, builder-time setup; the hot edge is a method-name collision with the event queue's `schedule`, not a real call)
            steps.into_iter().map(|(t, q)| (t.as_micros(), q)).collect();
        schedule.sort_by_key(|&(t, _)| t);
        for &(_, q) in &schedule {
            assert!(q >= 0.0, "rates must be non-negative");
        }
        let first = schedule[0].0 as f64;
        self.streams.push(Stream { api, schedule, next_at: first });
        self
    }

    /// Replaces the rate of `api` from time `from` onward (for dynamic
    /// experiments that change rates mid-run).
    pub fn set_rate(&mut self, api: ApiId, from: SimTime, qps: f64) {
        if let Some(s) = self.streams.iter_mut().find(|s| s.api == api) {
            s.schedule.retain(|&(t, _)| t < from.as_micros());
            s.schedule.push((from.as_micros(), qps));
        }
    }
}

impl LoadGen for OpenLoop {
    fn arrivals(&mut self, from: SimTime, to: SimTime) -> Vec<(SimTime, ApiId)> {
        let mut out = Vec::new();
        let from_us = from.as_micros() as f64;
        let to_us = to.as_micros() as f64;
        for s in &mut self.streams {
            if s.next_at < from_us {
                s.next_at = from_us;
            }
            loop {
                let t = s.next_at;
                if t >= to_us {
                    break;
                }
                let rate = s.rate_at(t as u64);
                if rate <= 0.0 {
                    // Jump to the next schedule step after t, if any.
                    match s.schedule.iter().find(|&&(st, q)| st as f64 > t && q > 0.0) {
                        Some(&(st, _)) => {
                            s.next_at = st as f64;
                            continue;
                        }
                        None => break,
                    }
                }
                out.push((SimTime(t as u64), s.api));
                let gap_us = if self.poisson { self.rng.exp(1e6 / rate) } else { 1e6 / rate };
                s.next_at = t + gap_us.max(1.0);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_emits_expected_count() {
        let mut g = OpenLoop::new(1).rate(ApiId(0), 100.0);
        let a = g.arrivals(SimTime::ZERO, SimTime::from_secs(2.0));
        assert_eq!(a.len(), 200);
        // Evenly spaced: gaps of 10 ms.
        assert_eq!(a[1].0.as_micros() - a[0].0.as_micros(), 10_000);
    }

    #[test]
    fn segmented_generation_is_seamless() {
        let mut g1 = OpenLoop::new(1).rate(ApiId(0), 37.0);
        let whole = g1.arrivals(SimTime::ZERO, SimTime::from_secs(3.0));
        let mut g2 = OpenLoop::new(1).rate(ApiId(0), 37.0);
        let mut parts = Vec::new();
        for k in 0..30 {
            parts.extend(g2.arrivals(
                SimTime::from_millis(k as f64 * 100.0),
                SimTime::from_millis((k + 1) as f64 * 100.0),
            ));
        }
        let whole_t: Vec<u64> = whole.iter().map(|(t, _)| t.as_micros()).collect();
        let parts_t: Vec<u64> = parts.iter().map(|(t, _)| t.as_micros()).collect();
        assert_eq!(whole_t, parts_t, "segmentation must not change the stream");
    }

    #[test]
    fn schedule_steps_change_rate() {
        let mut g = OpenLoop::new(1)
            .schedule(ApiId(0), vec![(SimTime::ZERO, 10.0), (SimTime::from_secs(1.0), 100.0)]);
        let first = g.arrivals(SimTime::ZERO, SimTime::from_secs(1.0));
        let second = g.arrivals(SimTime::from_secs(1.0), SimTime::from_secs(2.0));
        assert_eq!(first.len(), 10);
        assert_eq!(second.len(), 100);
    }

    #[test]
    fn zero_rate_periods_emit_nothing() {
        let mut g = OpenLoop::new(1)
            .schedule(ApiId(0), vec![(SimTime::ZERO, 0.0), (SimTime::from_secs(1.0), 50.0)]);
        assert!(g.arrivals(SimTime::ZERO, SimTime::from_secs(1.0)).is_empty());
        let a = g.arrivals(SimTime::from_secs(1.0), SimTime::from_secs(2.0));
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn poisson_rate_converges() {
        let mut g = OpenLoop::new(7).poisson().rate(ApiId(0), 200.0);
        let a = g.arrivals(SimTime::ZERO, SimTime::from_secs(50.0));
        let n = a.len() as f64;
        assert!((n - 10_000.0).abs() < 400.0, "poisson count {n}");
    }

    #[test]
    fn multiple_apis_interleave_independently() {
        let mut g = OpenLoop::new(1).rate(ApiId(0), 10.0).rate(ApiId(1), 5.0);
        let a = g.arrivals(SimTime::ZERO, SimTime::from_secs(2.0));
        let n0 = a.iter().filter(|(_, api)| *api == ApiId(0)).count();
        let n1 = a.iter().filter(|(_, api)| *api == ApiId(1)).count();
        assert_eq!((n0, n1), (20, 10));
    }

    #[test]
    fn arrivals_are_within_requested_segment() {
        let mut g = OpenLoop::new(3).poisson().rate(ApiId(0), 333.0);
        let from = SimTime::from_secs(5.0);
        let to = SimTime::from_secs(6.0);
        let _ = g.arrivals(SimTime::ZERO, from);
        for (t, _) in g.arrivals(from, to) {
            assert!(t >= from && t < to, "arrival {t} outside [{from}, {to})");
        }
    }

    #[test]
    fn set_rate_overrides_future() {
        let mut g = OpenLoop::new(1).rate(ApiId(0), 10.0);
        let _ = g.arrivals(SimTime::ZERO, SimTime::from_secs(1.0));
        g.set_rate(ApiId(0), SimTime::from_secs(1.0), 20.0);
        let a = g.arrivals(SimTime::from_secs(1.0), SimTime::from_secs(2.0));
        assert_eq!(a.len(), 20);
    }
}
