//! Closed-loop user-thread load generation (the Locust analog).
//!
//! Each simulated user runs the loop the paper describes (§5.3): pick a
//! request type from the API mix, send it, wait for the response, then wait a
//! random think time of up to `max_think` (the paper's 5 seconds) before the
//! next request. The user count can follow a schedule, producing surges
//! (Figure 21) and trace replays (Figure 20).

use std::collections::VecDeque;

use graf_sim::rng::DetRng;
use graf_sim::time::{SimDuration, SimTime};
use graf_sim::topology::ApiId;
use graf_sim::world::Completion;

use crate::LoadGen;

#[derive(Clone, Copy, Debug)]
enum UserState {
    /// Will send the next request at this time.
    Thinking(SimTime),
    /// Sent a request, waiting for its completion.
    Waiting,
    /// Removed from the population once its in-flight request finishes.
    Retiring,
}

/// A Locust-like closed-loop generator.
pub struct ClosedLoop {
    /// API mix: `(api, weight)`.
    mix: Vec<(ApiId, f64)>,
    max_think: SimDuration,
    users: Vec<UserState>,
    /// Indices of users waiting for a completion, FIFO.
    waiting: VecDeque<usize>,
    /// `(from, user_count)` schedule, sorted.
    schedule: Vec<(SimTime, usize)>,
    rng: DetRng,
}

impl ClosedLoop {
    /// Creates a generator with `users` user threads and a single-API mix.
    pub fn new(api: ApiId, users: usize, seed: u64) -> Self {
        Self::with_mix(vec![(api, 1.0)], users, seed)
    }

    /// Creates a generator with a weighted API mix.
    pub fn with_mix(mix: Vec<(ApiId, f64)>, users: usize, seed: u64) -> Self {
        assert!(!mix.is_empty(), "mix must not be empty");
        assert!(mix.iter().all(|&(_, w)| w >= 0.0), "weights must be non-negative");
        assert!(mix.iter().any(|&(_, w)| w > 0.0), "at least one positive weight");
        Self {
            mix,
            max_think: SimDuration::from_secs(5.0),
            users: Vec::new(),
            waiting: VecDeque::new(),
            schedule: vec![(SimTime::ZERO, users)],
            rng: DetRng::new(seed),
        }
    }

    /// Sets the maximum think time (uniform in `[0, max]`; paper default 5 s).
    pub fn max_think(mut self, max: SimDuration) -> Self {
        self.max_think = max;
        self
    }

    /// Appends a user-count change at time `from` (must be after previous
    /// schedule entries).
    pub fn set_users(&mut self, from: SimTime, users: usize) {
        if let Some(&(last, _)) = self.schedule.last() {
            assert!(from >= last, "user schedule must be time-ordered");
        }
        self.schedule.push((from, users));
    }

    /// Builder form of [`ClosedLoop::set_users`].
    pub fn users_at(mut self, from: SimTime, users: usize) -> Self {
        self.set_users(from, users);
        self
    }

    /// Number of currently active (non-retiring) users.
    pub fn active_users(&self) -> usize {
        self.users.iter().filter(|u| !matches!(u, UserState::Retiring)).count()
    }

    fn target_users(&self, t: SimTime) -> usize {
        let idx = self.schedule.partition_point(|&(from, _)| from <= t);
        if idx == 0 {
            0
        } else {
            self.schedule[idx - 1].1
        }
    }

    fn pick_api(&mut self) -> ApiId {
        let total: f64 = self.mix.iter().map(|&(_, w)| w).sum();
        let mut x = self.rng.unit() * total;
        for &(api, w) in &self.mix {
            x -= w;
            if x <= 0.0 {
                return api;
            }
        }
        self.mix.last().expect("non-empty mix").0
    }

    fn apply_schedule(&mut self, now: SimTime) {
        let target = self.target_users(now);
        let active = self.active_users();
        if active < target {
            // Spawn users; each starts with a random initial think so a surge
            // ramps in over the think window rather than as one spike.
            for _ in 0..(target - active) {
                let think = SimDuration::from_micros(
                    self.rng.uniform(0.0, self.max_think.as_micros().max(1) as f64) as u64,
                );
                self.users.push(UserState::Thinking(now + think));
            }
        } else if active > target {
            let mut to_retire = active - target;
            // Retire thinkers first (they vanish immediately); then mark
            // waiters to retire on completion.
            for u in self.users.iter_mut() {
                if to_retire == 0 {
                    break;
                }
                if matches!(u, UserState::Thinking(_)) {
                    *u = UserState::Retiring;
                    to_retire -= 1;
                }
            }
            for u in self.users.iter_mut() {
                if to_retire == 0 {
                    break;
                }
                if matches!(u, UserState::Waiting) {
                    *u = UserState::Retiring;
                    to_retire -= 1;
                }
            }
        }
        // Compact fully retired (non-waiting) users.
        self.users.retain(|u| !matches!(u, UserState::Retiring));
    }

    /// Retire bookkeeping note: a `Retiring` user that was `Waiting` is still
    /// referenced by `waiting`; on completion we simply drop the reference.
    fn user_completed(&mut self, end: SimTime) {
        while let Some(idx) = self.waiting.pop_front() {
            match self.users.get_mut(idx) {
                Some(u @ UserState::Waiting) => {
                    let think = SimDuration::from_micros(
                        self.rng.uniform(0.0, self.max_think.as_micros().max(1) as f64) as u64,
                    );
                    *u = UserState::Thinking(end + think);
                    return;
                }
                _ => continue, // retired or compacted; try the next waiter
            }
        }
    }
}

impl LoadGen for ClosedLoop {
    fn arrivals(&mut self, from: SimTime, to: SimTime) -> Vec<(SimTime, ApiId)> {
        self.apply_schedule(from);
        let mut out = Vec::new();
        for idx in 0..self.users.len() {
            if let UserState::Thinking(at) = self.users[idx] {
                if at < to {
                    let api = self.pick_api();
                    out.push((at.max(from), api));
                    self.users[idx] = UserState::Waiting;
                    self.waiting.push_back(idx);
                }
            }
        }
        out
    }

    fn on_completions(&mut self, completions: &[Completion]) {
        for c in completions {
            self.user_completed(c.end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_sim::frame::RequestId;

    fn completion(end: SimTime) -> Completion {
        Completion {
            request: RequestId(0),
            api: ApiId(0),
            start: SimTime::ZERO,
            end,
            timed_out: false,
        }
    }

    #[test]
    fn users_send_then_wait() {
        let mut g = ClosedLoop::new(ApiId(0), 10, 1);
        let first = g.arrivals(SimTime::ZERO, SimTime::from_secs(6.0));
        assert_eq!(first.len(), 10, "every user sends within the think window");
        // No completions: nobody sends again.
        let second = g.arrivals(SimTime::from_secs(6.0), SimTime::from_secs(12.0));
        assert!(second.is_empty(), "closed loop throttles on outstanding requests");
    }

    #[test]
    fn completions_release_users() {
        let mut g = ClosedLoop::new(ApiId(0), 5, 2);
        let n = g.arrivals(SimTime::ZERO, SimTime::from_secs(6.0)).len();
        assert_eq!(n, 5);
        g.on_completions(&[completion(SimTime::from_secs(6.0)); 5]);
        let again = g.arrivals(SimTime::from_secs(6.0), SimTime::from_secs(12.0));
        assert_eq!(again.len(), 5, "all users cycle after completion");
    }

    #[test]
    fn user_surge_schedule() {
        let mut g = ClosedLoop::new(ApiId(0), 2, 3).users_at(SimTime::from_secs(10.0), 6);
        let before = g.arrivals(SimTime::ZERO, SimTime::from_secs(6.0)).len();
        assert_eq!(before, 2);
        g.on_completions(&[completion(SimTime::from_secs(6.0)); 2]);
        // After the surge point, 4 new users appear.
        let after = g.arrivals(SimTime::from_secs(10.0), SimTime::from_secs(16.0)).len();
        assert_eq!(after, 6);
    }

    #[test]
    fn scale_down_retires_users() {
        let mut g = ClosedLoop::new(ApiId(0), 8, 4).users_at(SimTime::from_secs(10.0), 3);
        let _ = g.arrivals(SimTime::ZERO, SimTime::from_secs(6.0));
        g.on_completions(&[completion(SimTime::from_secs(6.0)); 8]);
        let after = g.arrivals(SimTime::from_secs(10.0), SimTime::from_secs(16.0));
        assert_eq!(after.len(), 3, "population shrank to 3");
        assert_eq!(g.active_users(), 3);
    }

    #[test]
    fn mix_weights_are_respected() {
        let mut g = ClosedLoop::with_mix(vec![(ApiId(0), 3.0), (ApiId(1), 1.0)], 400, 5)
            .max_think(SimDuration::from_millis(1.0));
        let a = g.arrivals(SimTime::ZERO, SimTime::from_secs(1.0));
        let n0 = a.iter().filter(|(_, api)| *api == ApiId(0)).count();
        let n1 = a.len() - n0;
        assert_eq!(a.len(), 400);
        let frac = n0 as f64 / (n0 + n1) as f64;
        assert!((frac - 0.75).abs() < 0.08, "mix fraction {frac}");
    }

    #[test]
    fn throughput_tracks_latency() {
        // With think ≈ 0 and service latency L, each user completes ~1/L rps.
        let mut g = ClosedLoop::new(ApiId(0), 10, 6).max_think(SimDuration::from_micros(1));
        let mut sent = 0usize;
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            let seg_end = t + SimDuration::from_millis(100.0);
            let arrivals = g.arrivals(t, seg_end);
            sent += arrivals.len();
            // Pretend every request takes 100 ms: complete at segment end.
            let comps: Vec<Completion> = arrivals.iter().map(|_| completion(seg_end)).collect();
            g.on_completions(&comps);
            t = seg_end;
        }
        // 10 users × 10 rps × 10 s = ~1000 requests.
        assert!((900..=1010).contains(&sent), "sent {sent}");
    }
}
