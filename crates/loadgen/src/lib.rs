//! # graf-loadgen
//!
//! Load generators for the GRAF reproduction — the analogs of the tools the
//! paper uses (§5, *Experimental Setup*):
//!
//! * [`OpenLoop`] — Vegeta-like constant-rate (open-loop) generation with
//!   piecewise-constant rate schedules. The paper uses Vegeta for the
//!   cascading-effect experiments ("queries for the cart page at a rate of
//!   300 qps") and for Social Network post-compose requests.
//! * [`ClosedLoop`] — Locust-like user threads: each simulated user sends a
//!   request drawn from an API mix, waits for the response, then thinks for a
//!   random delay ("randomly waits for up to 5 seconds") before the next
//!   request. User counts can follow a schedule, which is how the paper
//!   creates traffic surges (250 → 500 threads) and replays the Azure trace.
//! * [`azure`] — a synthetic invocations-per-minute series standing in for
//!   AzurePublicDatasetV2 (see DESIGN.md's substitution table).
//!
//! Generators implement [`LoadGen`]: the experiment driver repeatedly asks for
//! the arrivals of the next time segment and feeds completions back for
//! closed-loop pacing.
//!
//! **Invariants.** Every stochastic choice (Poisson gaps, think times, the
//! Azure-style series) is drawn from a `graf_sim::rng::DetRng` seeded at
//! construction — the same seed yields a bit-identical arrival sequence, and
//! segment boundaries never change what is drawn, only when it is handed
//! over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod azure;
pub mod closed;
pub mod open;

pub use azure::azure_series;
pub use closed::ClosedLoop;
pub use open::OpenLoop;

use graf_sim::time::SimTime;
use graf_sim::topology::ApiId;
use graf_sim::world::Completion;

/// A source of request arrivals.
///
/// The driver calls [`LoadGen::arrivals`] once per load segment (a small slice
/// of simulated time) and injects the returned arrivals into the world; after
/// running the segment it reports completions via [`LoadGen::on_completions`].
pub trait LoadGen {
    /// Returns arrivals in `[from, to)`, in any order.
    fn arrivals(&mut self, from: SimTime, to: SimTime) -> Vec<(SimTime, ApiId)>;

    /// Observes requests that completed during the last segment.
    fn on_completions(&mut self, _completions: &[Completion]) {}
}

/// Combines several generators into one (e.g. a background open-loop rate plus
/// a closed-loop user population).
pub struct Combined {
    parts: Vec<Box<dyn LoadGen>>,
}

impl Combined {
    /// Combines the given generators.
    pub fn new(parts: Vec<Box<dyn LoadGen>>) -> Self {
        Self { parts }
    }
}

impl LoadGen for Combined {
    fn arrivals(&mut self, from: SimTime, to: SimTime) -> Vec<(SimTime, ApiId)> {
        let mut out = Vec::new();
        for p in &mut self.parts {
            out.extend(p.arrivals(from, to));
        }
        out
    }

    fn on_completions(&mut self, completions: &[Completion]) {
        for p in &mut self.parts {
            p.on_completions(completions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u16);
    impl LoadGen for Fixed {
        fn arrivals(&mut self, from: SimTime, to: SimTime) -> Vec<(SimTime, ApiId)> {
            let _ = to;
            vec![(from, ApiId(self.0))]
        }
    }

    #[test]
    fn combined_merges_parts() {
        let mut c = Combined::new(vec![Box::new(Fixed(0)), Box::new(Fixed(1))]);
        let a = c.arrivals(SimTime(0), SimTime(10));
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].1, ApiId(0));
        assert_eq!(a[1].1, ApiId(1));
    }
}
