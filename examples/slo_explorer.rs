//! SLO explorer: sweep the latency SLO and watch how GRAF's minimal-CPU
//! configuration and its measured p99 respond (a small-scale Figure 17).
//!
//! ```sh
//! cargo run --release --example slo_explorer
//! ```

use graf::core::sample_collector::{SampleCollector, SamplingConfig};
use graf::core::{Graf, GrafBuildConfig, TrainConfig};
use graf::sim::topology::{ApiSpec, AppTopology, CallNode, ServiceSpec};

fn app() -> AppTopology {
    AppTopology::new(
        "slo-explorer",
        vec![
            ServiceSpec::new("edge", 1.2, 400),
            ServiceSpec::new("svc-a", 2.5, 300),
            ServiceSpec::new("svc-b", 1.8, 300),
        ],
        vec![ApiSpec::new(
            "request",
            CallNode::new(0).then(vec![CallNode::new(1), CallNode::new(2)]),
        )],
    )
}

fn main() {
    let sampling = SamplingConfig {
        probe_qps: vec![80.0],
        slo_ms: 80.0,
        measure_secs: 5.0,
        warmup_secs: 2.5,
        cpu_unit_mc: 100.0,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        ..Default::default()
    };
    println!("training GRAF...");
    let graf = Graf::build(
        app(),
        GrafBuildConfig {
            sampling: sampling.clone(),
            train: TrainConfig { epochs: 40, ..Default::default() },
            num_samples: 600,
            ..Default::default()
        },
    );

    // For each SLO: solve, then *deploy the solved configuration* in a fresh
    // simulation and measure the真 p99 — the Figure-17 loop.
    let validator = SampleCollector::new(app(), sampling);
    println!("{:>9} {:>12} {:>14} {:>14}", "SLO(ms)", "quota(mc)", "predicted", "measured p99");
    for slo in [20.0, 30.0, 40.0, 60.0, 80.0, 120.0] {
        let mut ctrl = graf.controller(slo);
        let (quotas, solve) = ctrl.plan(&[80.0]);
        let (measured, _) = validator.measure(&quotas, &[80.0], 1234 + slo as u64, false);
        println!(
            "{:>9.0} {:>12.0} {:>14.1} {:>14.1}",
            slo,
            quotas.iter().sum::<f64>(),
            solve.predicted_ms,
            measured.e2e_tail_ms.unwrap_or(f64::NAN),
        );
    }
    println!("\nTighter SLOs should cost more CPU; measured p99 should track the target.");
}
