//! Azure trace replay: drive Online Boutique with a synthetic
//! invocations-per-minute series (the AzurePublicDatasetV2 stand-in) and
//! compare GRAF's instance footprint with the Kubernetes HPA's — the
//! Figure-20 scenario at example scale.
//!
//! ```sh
//! cargo run --release --example azure_replay
//! ```

use graf::apps::online_boutique;
use graf::core::{Graf, GrafBuildConfig, SamplingConfig, TrainConfig};
use graf::loadgen::azure::{azure_series, AzureParams};
use graf::loadgen::ClosedLoop;
use graf::orchestrator::{
    run_experiment, Autoscaler, Cluster, CreationModel, Deployment, ExperimentHooks, HpaConfig,
    KubernetesHpa,
};
use graf::sim::time::{SimDuration, SimTime};
use graf::sim::topology::{ApiId, ServiceId};
use graf::sim::world::{SimConfig, World};

const CPU_UNIT: f64 = 100.0;
const SLO_MS: f64 = 100.0;
const MINUTES: usize = 16;

fn replay(name: &str, series: &[u32], scaler: &mut dyn Autoscaler) -> Vec<(f64, usize)> {
    let topo = online_boutique();
    let world = World::new(topo.clone(), SimConfig::default(), 777);
    let deployments = (0..topo.num_services())
        .map(|s| Deployment::new(ServiceId(s as u16), CPU_UNIT, 4))
        .collect();
    let mut cluster = Cluster::new(world, deployments, CreationModel::default());

    // Locust spawns the appropriate number of user threads at every minute.
    let mut users = ClosedLoop::with_mix(
        vec![(ApiId(0), 3.0), (ApiId(1), 3.0), (ApiId(2), 4.0)],
        series[0] as usize,
        3,
    );
    for (m, &u) in series.iter().enumerate().skip(1) {
        users.set_users(SimTime::from_secs(60.0 * m as f64), u as usize);
    }

    let mut timeline = Vec::new();
    let mut next = SimTime::from_secs(30.0);
    let mut on_segment = |cluster: &mut Cluster, _: &[_]| {
        let now = cluster.world().now();
        if now >= next {
            timeline.push((now.as_secs_f64(), cluster.total_instances()));
            next += SimDuration::from_secs(30.0);
        }
    };
    let mut hooks = ExperimentHooks { on_segment: Some(&mut on_segment), on_control: None };
    run_experiment(
        &mut cluster,
        &mut users,
        scaler,
        SimTime::from_secs(60.0 * MINUTES as f64),
        &mut hooks,
    );
    println!(
        "{name}: final p99 = {:?} ms",
        cluster.world().e2e_percentile(30, 0.99).map(|d| d.as_millis_f64().round())
    );
    timeline
}

fn main() {
    let params = AzureParams { mean_users: 60.0, drop_at_min: Some(11), ..Default::default() };
    let series = azure_series(&params, MINUTES, 42);
    println!("user series (per minute): {series:?}");

    println!("training GRAF...");
    let graf = Graf::build(
        online_boutique(),
        GrafBuildConfig {
            sampling: SamplingConfig {
                probe_qps: vec![30.0, 30.0, 40.0],
                slo_ms: SLO_MS,
                cpu_unit_mc: CPU_UNIT,
                measure_secs: 5.0,
                warmup_secs: 2.5,
                threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
                ..Default::default()
            },
            train: TrainConfig { epochs: 40, ..Default::default() },
            num_samples: 600,
            ..Default::default()
        },
    );

    let mut graf_ctrl = graf.controller(SLO_MS);
    let graf_tl = replay("GRAF", &series, &mut graf_ctrl);
    let mut hpa = KubernetesHpa::new(HpaConfig::with_threshold(0.5), 6);
    let hpa_tl = replay("HPA", &series, &mut hpa);

    println!("\n{:>6} {:>8} {:>8}", "t(s)", "GRAF", "HPA");
    for (g, h) in graf_tl.iter().zip(&hpa_tl) {
        println!("{:>6.0} {:>8} {:>8}", g.0, g.1, h.1);
    }
    let mean = |tl: &[(f64, usize)]| {
        tl.iter().map(|&(_, n)| n as f64).sum::<f64>() / tl.len().max(1) as f64
    };
    println!(
        "\nmean instances — GRAF: {:.1}, HPA: {:.1} (watch the HPA lag after the drop: \
         its 5-minute stabilization window keeps instances up)",
        mean(&graf_tl),
        mean(&hpa_tl)
    );
}
