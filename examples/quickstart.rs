//! Quickstart: train GRAF on a small microservice app and solve for the
//! cheapest CPU configuration that meets a latency SLO.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graf::core::{Graf, GrafBuildConfig, SamplingConfig, TrainConfig};
use graf::sim::topology::{ApiSpec, AppTopology, CallNode, ServiceSpec};

fn main() {
    // A three-service chain: gateway → auth → database-ish backend.
    // Work is in milliseconds-of-a-full-core per request.
    let topo = AppTopology::new(
        "quickstart",
        vec![
            ServiceSpec::new("gateway", 1.0, 400),
            ServiceSpec::new("auth", 2.0, 300),
            ServiceSpec::new("backend", 4.0, 500),
        ],
        vec![ApiSpec::new(
            "request",
            CallNode::new(0).call(CallNode::new(1).call(CallNode::new(2))),
        )],
    );

    println!("== GRAF quickstart: {} ==", topo.name);
    print!("{}", topo.to_dot());

    // Offline phase: profile, bound the search space (Algorithm 1), collect
    // samples from the simulated cluster, train the GNN latency predictor.
    let cfg = GrafBuildConfig {
        sampling: SamplingConfig {
            probe_qps: vec![60.0],
            slo_ms: 60.0,
            measure_secs: 5.0,
            warmup_secs: 2.5,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            ..Default::default()
        },
        train: TrainConfig { epochs: 40, ..Default::default() },
        num_samples: 400,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let graf = Graf::build(topo, cfg);
    println!(
        "trained on {} samples in {:.1}s (best val loss {:.4})",
        graf.samples.len(),
        t0.elapsed().as_secs_f64(),
        graf.report.best_val
    );
    println!(
        "Algorithm-1 bounds per service (mc): lower {:?}, upper {:?}",
        graf.bounds.lower.iter().map(|v| v.round()).collect::<Vec<_>>(),
        graf.bounds.upper.iter().map(|v| v.round()).collect::<Vec<_>>(),
    );

    // Online phase: what is the cheapest configuration for each workload at
    // a 60 ms p99 SLO?
    let mut controller = graf.controller(60.0);
    for qps in [30.0, 60.0, 90.0] {
        let (quotas, solve) = controller.plan(&[qps]);
        println!(
            "{qps:>5.0} qps → quotas {:?} mc (total {:>6.0}), predicted p99 {:>5.1} ms, {} iterations",
            quotas.iter().map(|v| v.round()).collect::<Vec<_>>(),
            quotas.iter().sum::<f64>(),
            solve.predicted_ms,
            solve.iterations,
        );
    }
}
