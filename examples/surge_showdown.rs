//! Surge showdown: GRAF vs the Kubernetes HPA vs a FIRM-like scaler when
//! traffic doubles abruptly on Online Boutique (the §5.3 "Handling traffic
//! surge" scenario at example scale).
//!
//! Prints a timeline of total instances and trailing p99 for each controller.
//!
//! ```sh
//! cargo run --release --example surge_showdown
//! ```

use graf::apps::online_boutique;
use graf::core::{Graf, GrafBuildConfig, SamplingConfig, TrainConfig};
use graf::loadgen::ClosedLoop;
use graf::orchestrator::{
    run_experiment, Autoscaler, Cluster, CreationModel, Deployment, ExperimentHooks, FirmLike,
    HpaConfig, KubernetesHpa,
};
use graf::sim::time::{SimDuration, SimTime};
use graf::sim::topology::{ApiId, ServiceId};
use graf::sim::world::{SimConfig, World};

const SLO_MS: f64 = 100.0;
const CPU_UNIT: f64 = 100.0;
const USERS_BEFORE: usize = 100;
const USERS_AFTER: usize = 250;
const SURGE_AT_S: f64 = 60.0;
const END_S: f64 = 240.0;

fn run(name: &str, scaler: &mut dyn Autoscaler) {
    let topo = online_boutique();
    let world = World::new(topo.clone(), SimConfig::default(), 404);
    let deployments = (0..topo.num_services())
        .map(|s| Deployment::new(ServiceId(s as u16), CPU_UNIT, 4))
        .collect();
    let mut cluster = Cluster::new(world, deployments, CreationModel::default());

    // Locust-style users hitting the three APIs; the population jumps at the
    // surge instant.
    let mut users = ClosedLoop::with_mix(
        vec![(ApiId(0), 3.0), (ApiId(1), 3.0), (ApiId(2), 4.0)],
        USERS_BEFORE,
        9,
    )
    .users_at(SimTime::from_secs(SURGE_AT_S), USERS_AFTER);

    println!("-- {name} --");
    println!("{:>6} {:>10} {:>12}", "t(s)", "instances", "p99(ms)");
    let mut next_report = SimTime::from_secs(20.0);
    let mut on_segment = |cluster: &mut Cluster, _: &[_]| {
        let now = cluster.world().now();
        if now >= next_report {
            let p99 =
                cluster.world().e2e_percentile(10, 0.99).map_or(f64::NAN, |d| d.as_millis_f64());
            println!("{:>6.0} {:>10} {:>12.1}", now.as_secs_f64(), cluster.total_instances(), p99);
            next_report += SimDuration::from_secs(20.0);
        }
    };
    let mut hooks = ExperimentHooks { on_segment: Some(&mut on_segment), on_control: None };
    run_experiment(&mut cluster, &mut users, scaler, SimTime::from_secs(END_S), &mut hooks);
}

fn main() {
    let topo = online_boutique();

    // Train GRAF once (small budget; raise num_samples for tighter control).
    println!("training GRAF on {} ...", topo.name);
    let graf = Graf::build(
        topo,
        GrafBuildConfig {
            sampling: SamplingConfig {
                probe_qps: vec![30.0, 30.0, 40.0],
                slo_ms: SLO_MS,
                cpu_unit_mc: CPU_UNIT,
                measure_secs: 5.0,
                warmup_secs: 2.5,
                threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
                ..Default::default()
            },
            train: TrainConfig { epochs: 40, ..Default::default() },
            num_samples: 600,
            ..Default::default()
        },
    );

    let mut graf_ctrl = graf.controller(SLO_MS);
    run("GRAF (proactive)", &mut graf_ctrl);

    let mut hpa = KubernetesHpa::new(HpaConfig::with_threshold(0.5), 6);
    run("Kubernetes HPA (threshold 50%)", &mut hpa);

    let mut firm = FirmLike::default();
    run("FIRM-like", &mut firm);

    println!("\nNote how GRAF jumps every service's instances at the surge,");
    println!("while the HPA ramps them one chain-level at a time (cascading effect).");
}
