//! # GRAF — GNN-based Proactive Resource Allocation for SLO-Oriented Microservices
//!
//! A full Rust reproduction of *GRAF: A Graph Neural Network based Proactive
//! Resource Allocation Framework for SLO-Oriented Microservices* (Park, Choi,
//! Lee, Han — CoNEXT 2021), including every substrate the paper's evaluation
//! depends on:
//!
//! | layer | crate | paper analog |
//! |---|---|---|
//! | metrics | [`metrics`] | Prometheus / cAdvisor / Linkerd |
//! | tracing | [`trace`] | Jaeger |
//! | telemetry | [`obs`] | GRAF's own spans/metrics/exporters |
//! | self-profiling | [`prof`] | GRAF's own phase profiler (wall-time tree) |
//! | cluster simulation | [`sim`] | 7-node Kubernetes testbed |
//! | control plane + baselines | [`orchestrator`] | Kubernetes deployments, HPA, FIRM-like |
//! | load generation | [`loadgen`] | Vegeta, Locust, Azure trace replay |
//! | benchmark apps | [`apps`] | Online Boutique, Social Network, Robot Shop, Bookinfo |
//! | neural nets | [`nn`] | PyTorch |
//! | GNN | [`gnn`] | torch-geometric MPNN |
//! | GRAF | [`core`] | the paper's contribution (§3) |
//! | fault injection | [`chaos`] | production failure modes (lost traces, scrape gaps, failed creations) |
//!
//! ## Quickstart
//!
//! ```no_run
//! use graf::apps::online_boutique;
//! use graf::core::{Graf, GrafBuildConfig, SamplingConfig};
//!
//! // Profile the app, reduce the search space (Algorithm 1), collect
//! // samples, train the GNN latency predictor:
//! let cfg = GrafBuildConfig {
//!     sampling: SamplingConfig { probe_qps: vec![30.0, 30.0, 40.0], ..Default::default() },
//!     ..Default::default()
//! };
//! let graf = Graf::build(online_boutique(), cfg);
//!
//! // Ask for the cheapest configuration meeting a 100 ms p99 SLO at the
//! // current front-end workload:
//! let mut controller = graf.controller(100.0);
//! let (quotas_mc, solve) = controller.plan(&[30.0, 30.0, 40.0]);
//! println!("quotas: {quotas_mc:?}, predicted p99 = {:.1} ms", solve.predicted_ms);
//! ```
//!
//! The `examples/` directory contains runnable scenarios and
//! `crates/bench/src/bin/` one binary per table/figure of the paper's
//! evaluation (see DESIGN.md for the experiment index).

pub use graf_apps as apps;
pub use graf_chaos as chaos;
pub use graf_core as core;
pub use graf_gnn as gnn;
pub use graf_loadgen as loadgen;
pub use graf_metrics as metrics;
pub use graf_nn as nn;
pub use graf_obs as obs;
pub use graf_orchestrator as orchestrator;
pub use graf_prof as prof;
pub use graf_sim as sim;
pub use graf_trace as trace;
