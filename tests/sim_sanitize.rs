//! Zero-allocation steady state for the simulator's request path
//! (`--features sanitize`).
//!
//! The event core recycles everything it touches per request — calendar-queue
//! buckets, the request slab, the frame slab, station job vectors, the
//! min-load index and the completion buffer — so once every pool has reached
//! its high-water mark, driving a request from arrival to completion must not
//! touch the heap at all. The counting global allocator proves it: a measured
//! steady-state window performs **zero** allocations, for both the calendar
//! queue and the reference binary-heap core.
//!
//! Tracing is sampled out (`trace_sample: 0.0`) and request timeouts are
//! disabled: span recording intentionally allocates (per sampled trace), and
//! both are off the steady-state bar defined by the perf issue. CPU
//! checkpointing runs at its coarsest resolution so the usage series
//! collapses into a single in-place cell.

#![cfg(feature = "sanitize")]

use graf::apps::online_boutique;
use graf::nn::sanitize::alloc_delta;
use graf::sim::events::QueueKind;
use graf::sim::rng::DetRng;
use graf::sim::time::SimTime;
use graf::sim::topology::{ApiId, ApiSpec, AppTopology, CallNode, ServiceId, ServiceSpec};
use graf::sim::world::{Completion, SimConfig, World};

/// A two-service pipeline with deterministic (cv = 0) service times: under
/// fixed-interval arrivals the in-flight population is constant, so every
/// pool reaches its final size during warmup.
fn pipeline_topo() -> AppTopology {
    AppTopology::new(
        "sanitize",
        vec![ServiceSpec::new("a", 0.8, 150).cv(0.0), ServiceSpec::new("b", 1.2, 150).cv(0.0)],
        vec![ApiSpec::new("get", CallNode::new(0).call(CallNode::new(1)))],
    )
}

fn sanitize_config(kind: QueueKind) -> SimConfig {
    SimConfig {
        event_queue: kind,
        trace_sample: 0.0,
        request_timeout_us: None,
        cpu_checkpoint_us: u64::MAX,
        // Small windows and a short retention horizon: the metric deques
        // reach retention during warmup, after which window rotation recycles
        // evicted histograms instead of allocating new ones.
        window_us: 10_000,
        retain_windows: 8,
        ..SimConfig::default()
    }
}

/// Heap allocations made while simulating a 2 s steady-state window at
/// 500 qps (≤ 38% utilization on both services), after a 2 s warmup that
/// fills every slab, bucket and scratch buffer. Arrivals for the measured
/// window are pre-scheduled: injection may grow far-future wheel buckets,
/// but the request path being certified starts at the event pop.
fn steady_state_allocs(kind: QueueKind) -> u64 {
    let mut w = World::new(pipeline_topo(), sanitize_config(kind), 17);
    w.add_instances(ServiceId(0), 2, 800.0, SimTime::ZERO);
    w.add_instances(ServiceId(1), 2, 800.0, SimTime::ZERO);
    // Two warmup windows with a drain between them: `drain_completions_into`
    // swaps buffers with the world, so BOTH vectors in rotation must reach
    // their high-water capacity before the measured window (the experiment
    // driver's persistent buffer reaches this steady state the same way).
    // The warmup spans 10 s because the arrival-to-wheel-slot alignment
    // pattern repeats every lcm(2 ms, 64 µs · 1024) = 8.192 s — one full
    // period establishes the high-water mark of every level-0 bucket.
    let mut sink: Vec<Completion> = Vec::new();
    for i in 0..5_000u64 {
        w.inject(ApiId(0), SimTime(i * 2_000));
    }
    w.run_until(SimTime::from_secs(5.0));
    w.drain_completions_into(&mut sink);
    w.run_until(SimTime::from_secs(10.0));
    w.drain_completions_into(&mut sink);
    assert!(w.stats().completed > 4_990, "warmup did work ({})", w.stats().completed);

    for i in 5_000..6_000u64 {
        w.inject(ApiId(0), SimTime(i * 2_000));
    }
    let ((), allocs) = alloc_delta(|| w.run_until(SimTime::from_secs(12.0)));
    w.drain_completions_into(&mut sink);
    assert!(w.stats().completed > 5_990, "measured window did work ({})", w.stats().completed);
    allocs
}

#[test]
fn request_path_is_allocation_free_on_the_calendar_queue() {
    assert_eq!(
        steady_state_allocs(QueueKind::Calendar),
        0,
        "steady-state request path must not allocate (calendar core)"
    );
}

#[test]
fn request_path_is_allocation_free_on_the_reference_heap() {
    assert_eq!(
        steady_state_allocs(QueueKind::Heap),
        0,
        "steady-state request path must not allocate (heap core)"
    );
}

/// Online Boutique under Poisson load: stochastic bursts can keep raising a
/// high-water mark (a deeper wheel bucket, a new slab slot), so finite runs
/// never hit exactly zero — but allocations must taper to a trickle once the
/// pools are warm: later windows allocate no more than earlier ones, and the
/// final 2 s window (≈1200 requests, ≈15k events) stays under a few dozen.
#[test]
fn boutique_steady_state_allocations_taper_off() {
    let mut w = World::new(online_boutique(), sanitize_config(QueueKind::Calendar), 9);
    for s in 0..6u16 {
        w.add_instances(ServiceId(s), 4, 250.0, SimTime::ZERO);
    }
    // Pre-generate all arrivals for 8 s of ~600 qps mixed load, so the
    // measured windows contain only event processing.
    let mut rng = DetRng::new(9 ^ 0x51);
    for (api, rate) in [(0u16, 180.0f64), (1, 180.0), (2, 240.0)] {
        let mut t = 0.0;
        loop {
            t += rng.exp(1e6 / rate);
            if t >= 8e6 {
                break;
            }
            w.inject(ApiId(api), SimTime(t as u64));
        }
    }
    let mut sink: Vec<Completion> = Vec::new();
    let mut windows = [0u64; 4];
    for (i, slot) in windows.iter_mut().enumerate() {
        let end = SimTime::from_secs(2.0 * (i + 1) as f64);
        let ((), n) = alloc_delta(|| w.run_until(end));
        w.drain_completions_into(&mut sink);
        *slot = n;
    }
    assert!(w.stats().completed > 4_000, "the run did work ({})", w.stats().completed);
    assert!(windows[3] <= windows[1], "allocations must not grow once warm: windows {windows:?}");
    assert!(
        windows[3] <= 64,
        "steady state tapers to a trickle (high-water growth only): windows {windows:?}"
    );
}
