//! Integration: GRAF's headline claim at test scale — equal-SLO steady state
//! with less CPU than a threshold autoscaler, on a small two-service app.

use graf::core::baseline::{run_steady, SteadyTrial};
use graf::core::sample_collector::SamplingConfig;
use graf::core::{Graf, GrafBuildConfig, TrainConfig};
use graf::orchestrator::{HpaConfig, KubernetesHpa};
use graf::sim::time::SimDuration;
use graf::sim::topology::{ApiSpec, AppTopology, CallNode, ServiceSpec};

fn app() -> AppTopology {
    AppTopology::new(
        "steady",
        vec![ServiceSpec::new("front", 0.4, 300), ServiceSpec::new("back", 1.0, 300)],
        vec![ApiSpec::new("req", CallNode::new(0).call(CallNode::new(1)))],
    )
}

#[test]
fn graf_meets_slo_with_competitive_quota() {
    let slo_ms = 35.0;
    let graf = Graf::build(
        app(),
        GrafBuildConfig {
            sampling: SamplingConfig {
                probe_qps: vec![150.0],
                slo_ms,
                cpu_unit_mc: 100.0,
                measure_secs: 4.0,
                warmup_secs: 2.0,
                threads: 8,
                seed: 31,
                ..SamplingConfig::default()
            },
            train: TrainConfig { epochs: 30, evals: 6, seed: 31, ..Default::default() },
            num_samples: 300,
            split_seed: 3,
            ..Default::default()
        },
    );

    let mut trial = SteadyTrial::new(app(), vec![150.0]).initial_replicas(4);
    trial.warmup = SimDuration::from_secs(420.0);
    trial.measure = SimDuration::from_secs(120.0);

    let mut graf_ctrl = graf.controller(slo_ms);
    let graf_out = run_steady(&trial, &mut graf_ctrl);
    let graf_p99 = graf_out.p99_ms.expect("graf served traffic");
    assert!(
        graf_p99 <= slo_ms * 1.5,
        "GRAF p99 {graf_p99:.1} ms within the SLO band ({slo_ms} ms)"
    );
    assert_eq!(graf_out.timeouts, 0, "no timeouts in steady state");

    // An over-tight HPA trivially meets the SLO but burns CPU; GRAF must
    // undercut it while staying in the band.
    let mut tight = KubernetesHpa::new(HpaConfig::with_threshold(0.25), 2);
    let tight_out = run_steady(&trial, &mut tight);
    assert!(
        tight_out.p99_ms.expect("hpa served traffic") <= slo_ms * 1.5,
        "tight HPA meets the SLO too"
    );
    assert!(
        graf_out.mean_quota_mc < tight_out.mean_quota_mc,
        "GRAF ({:.0} mc) undercuts the over-tight HPA ({:.0} mc)",
        graf_out.mean_quota_mc,
        tight_out.mean_quota_mc
    );
}
