//! Integration: the hierarchical self-profiler observes without perturbing —
//! a profiled simulation is bit-identical to an unprofiled one, and when
//! enabled the per-phase event-loop breakdown accounts for (nearly) all of
//! the loop's wall time.

use graf::apps::online_boutique;
use graf::prof::Prof;
use graf::sim::events::QueueKind;
use graf::sim::rng::DetRng;
use graf::sim::time::SimTime;
use graf::sim::topology::{ApiId, ServiceId};
use graf::sim::world::{SimConfig, World, WorldStats};

/// The bench scenario (`sim_boutique`): 10 s of Online Boutique at ~600 qps,
/// returning every observable the world produces plus the latency stream.
fn sim_boutique(prof: &Prof) -> (WorldStats, Vec<u64>) {
    sim_boutique_with(prof, QueueKind::Calendar)
}

fn sim_boutique_with(prof: &Prof, kind: QueueKind) -> (WorldStats, Vec<u64>) {
    let topo = online_boutique();
    let mut w = World::new(topo, SimConfig { event_queue: kind, ..SimConfig::default() }, 9);
    w.set_prof(prof.clone());
    for s in 0..6u16 {
        w.add_instances(ServiceId(s), 4, 250.0, SimTime::ZERO);
    }
    let mut rng = DetRng::new(9 ^ 0x51);
    for (api, rate) in [(0u16, 180.0f64), (1, 180.0), (2, 240.0)] {
        let mut t = 0.0;
        loop {
            t += rng.exp(1e6 / rate);
            if t >= 10e6 {
                break;
            }
            w.inject(ApiId(api), SimTime(t as u64));
        }
    }
    w.run_until(SimTime::from_secs(10.0));
    let latencies = w.drain_completions().iter().map(|c| c.latency_us()).collect();
    (w.stats(), latencies)
}

#[test]
fn profiling_does_not_perturb_the_simulation() {
    // Profiling on/off crossed with both queue implementations: all four
    // cells must be bit-identical.
    let off = sim_boutique_with(&Prof::disabled(), QueueKind::Calendar);
    let on = sim_boutique_with(&Prof::enabled(), QueueKind::Calendar);
    let heap_off = sim_boutique_with(&Prof::disabled(), QueueKind::Heap);
    let heap_on = sim_boutique_with(&Prof::enabled(), QueueKind::Heap);
    assert_eq!(off.0.completed, on.0.completed, "completed counts match");
    assert_eq!(off.0.events, on.0.events, "event counts match");
    assert_eq!(off.0.spans, on.0.spans, "span counts match");
    assert_eq!(off.1, on.1, "every latency is bit-identical");
    assert_eq!(off.1, heap_off.1, "calendar matches the reference heap");
    assert_eq!(heap_off.1, heap_on.1, "heap core is also profile-invariant");
    assert_eq!(off.0.events, heap_off.0.events, "event counts match across queues");
    assert!(off.0.completed > 1000, "the run actually did work ({})", off.0.completed);
}

#[test]
fn event_loop_breakdown_holds_for_the_heap_queue_too() {
    // The reference heap core shares the instrumented loop: its breakdown
    // must also cover ≥90% of wall time so A/B profiles stay comparable.
    let prof = Prof::enabled();
    let _ = sim_boutique_with(&prof, QueueKind::Heap);
    let report = prof.report();
    let root = report.find("sim.event_loop").expect("event-loop phase recorded");
    let child_ns: u64 = report.children("sim.event_loop").iter().map(|c| c.total_ns).sum();
    let coverage = child_ns as f64 / root.total_ns as f64;
    assert!(coverage >= 0.90, "heap-core coverage {:.1}%:\n{}", coverage * 100.0, report.render());
}

#[test]
fn event_loop_breakdown_covers_at_least_90_percent_of_wall_time() {
    let prof = Prof::enabled();
    let (stats, _) = sim_boutique(&prof);
    let report = prof.report();

    let root = report.find("sim.event_loop").expect("event-loop phase recorded");
    assert!(root.total_ns > 0, "the loop took measurable time");

    let children = report.children("sim.event_loop");
    assert!(
        children.iter().any(|c| c.name == "sim.event_loop.queue_pop"),
        "queue operations are attributed:\n{}",
        report.render()
    );
    let child_ns: u64 = children.iter().map(|c| c.total_ns).sum();
    let coverage = child_ns as f64 / root.total_ns as f64;
    assert!(
        coverage >= 0.90,
        "per-phase breakdown must cover >=90% of the event loop, got {:.1}%:\n{}",
        coverage * 100.0,
        report.render()
    );

    // The deterministic work counters account for every dispatched event:
    // each event adds one unit inside its phase scope.
    let dispatched: u64 =
        children.iter().filter(|c| c.name != "sim.event_loop.queue_pop").map(|c| c.work).sum();
    assert_eq!(dispatched, stats.events, "work counters match dispatched events exactly");

    // Station math and span recording nest under their event phases.
    assert!(
        report.rows.iter().any(|r| r.name == "sim.station.advance" && r.calls > 0),
        "station advance attributed:\n{}",
        report.render()
    );
    assert!(
        report.rows.iter().any(|r| r.name == "sim.span_record"),
        "span recording attributed:\n{}",
        report.render()
    );
}

#[test]
fn disabled_profiler_records_nothing() {
    let prof = Prof::disabled();
    let _ = sim_boutique(&prof);
    assert!(prof.report().rows.is_empty(), "disabled handle stays empty");
    assert!(!prof.is_enabled());
}
