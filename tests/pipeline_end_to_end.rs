//! Integration: the full GRAF pipeline (profile → Algorithm 1 → sample →
//! train → solve → control) against a simulated application, spanning
//! graf-sim, graf-trace, graf-orchestrator, graf-gnn and graf-core.

use graf::core::sample_collector::SamplingConfig;
use graf::core::{Graf, GrafBuildConfig, TrainConfig};
use graf::orchestrator::{Cluster, CreationModel, Deployment};
use graf::sim::time::SimTime;
use graf::sim::topology::{ApiId, ApiSpec, AppTopology, CallNode, ServiceId, ServiceSpec};
use graf::sim::world::{SimConfig, World};

fn app() -> AppTopology {
    AppTopology::new(
        "it-app",
        vec![
            ServiceSpec::new("edge", 0.4, 300),
            ServiceSpec::new("mid", 0.8, 250),
            ServiceSpec::new("leaf", 0.5, 250),
        ],
        vec![ApiSpec::new("req", CallNode::new(0).call(CallNode::new(1).call(CallNode::new(2))))],
    )
}

fn quick_cfg(seed: u64) -> GrafBuildConfig {
    GrafBuildConfig {
        sampling: SamplingConfig {
            probe_qps: vec![120.0],
            slo_ms: 40.0,
            cpu_unit_mc: 100.0,
            measure_secs: 4.0,
            warmup_secs: 2.0,
            abundant_quota_mc: 3000.0,
            threads: 8,
            seed,
            ..SamplingConfig::default()
        },
        // Small dataset → one mini-batch per epoch, so epochs ≈ optimizer
        // steps; give the model a real budget.
        train: TrainConfig { epochs: 150, evals: 10, seed, ..Default::default() },
        num_samples: 350,
        split_seed: seed ^ 0xAB,
        ..Default::default()
    }
}

#[test]
fn pipeline_learns_structure_and_solves() {
    let graf = Graf::build(app(), quick_cfg(11));

    // The analyzer learned the chain purely from traces.
    assert_eq!(graf.analyzer.edges(), &[(0, 1), (1, 2)]);
    let l = graf.analyzer.service_workloads(&[100.0]);
    assert_eq!(l, vec![100.0, 100.0, 100.0]);

    // Algorithm-1 bounds are ordered and the box is a real reduction.
    for i in 0..3 {
        assert!(graf.bounds.lower[i] <= graf.bounds.upper[i]);
    }
    assert!(graf.bounds.volume_reduction(50.0, 3000.0) < 0.2);

    // The model learned the two first-order relationships. Quota direction
    // is probed at the top of the trained workload range where the latency
    // contrast across the Algorithm-1 box is strongest.
    let l_heavy = graf.analyzer.service_workloads(&[190.0]);
    let p_lo = graf.model.predict_ms(&l_heavy, &graf.bounds.lower);
    let p_hi = graf.model.predict_ms(&l_heavy, &graf.bounds.upper);
    assert!(p_lo > p_hi, "starved {p_lo} must predict slower than abundant {p_hi}");
    // Workload direction at mid-quota.
    let mid: Vec<f64> =
        graf.bounds.lower.iter().zip(&graf.bounds.upper).map(|(&a, &b)| 0.5 * (a + b)).collect();
    let light = graf.model.predict_ms(&graf.analyzer.service_workloads(&[40.0]), &mid);
    let heavy = graf.model.predict_ms(&l_heavy, &mid);
    assert!(heavy > light, "more workload predicts slower: {light} vs {heavy}");

    // Solving responds to workload and stays in bounds.
    let mut ctrl = graf.controller(40.0);
    let (q_low, _) = ctrl.plan(&[40.0]);
    let (q_high, res_high) = ctrl.plan(&[120.0]);
    assert!(q_high.iter().sum::<f64>() >= q_low.iter().sum::<f64>());
    assert!(res_high.iterations > 0);
    for (q, lo) in q_high.iter().zip(&graf.bounds.lower) {
        assert!(*q >= lo - 1e-6);
    }
}

#[test]
fn controller_drives_a_live_cluster_to_meet_slo() {
    let graf = Graf::build(app(), quick_cfg(13));
    let slo_ms = 40.0;
    let mut ctrl = graf.controller(slo_ms);

    let world = World::new(app(), SimConfig::default(), 99);
    let deployments = (0..3).map(|s| Deployment::new(ServiceId(s as u16), 100.0, 4)).collect();
    let mut cluster = Cluster::new(world, deployments, CreationModel::instant());

    // 120 qps steady; tick the controller every 15 s like the paper.
    let mut rng = graf::sim::rng::DetRng::new(5);
    let mut t_us = 0.0f64;
    let end = SimTime::from_secs(180.0);
    let mut all_arrivals = Vec::new();
    loop {
        t_us += rng.exp(1e6 / 120.0);
        if t_us >= end.as_micros() as f64 {
            break;
        }
        all_arrivals.push(SimTime(t_us as u64));
    }
    let mut next_tick = SimTime::from_secs(15.0);
    let mut ai = 0;
    while cluster.world().now() < end {
        let to = next_tick.min(end);
        while ai < all_arrivals.len() && all_arrivals[ai] < to {
            cluster.world_mut().inject(ApiId(0), all_arrivals[ai]);
            ai += 1;
        }
        cluster.world_mut().run_until(to);
        use graf::orchestrator::Autoscaler;
        ctrl.tick(&mut cluster);
        next_tick = SimTime(next_tick.0 + 15_000_000);
    }

    // Over the last minute the measured p99 tracks the SLO with the usual
    // model-error band.
    let p99 = cluster.world().e2e_percentile(60, 0.99).expect("traffic flowed").as_millis_f64();
    assert!(p99 <= slo_ms * 1.6, "GRAF keeps p99 ({p99:.1} ms) in the SLO band ({slo_ms} ms)");
    // And it did not trivially max out capacity to get there.
    let quota = cluster.total_ready_quota_mc();
    let upper: f64 = graf.bounds.upper.iter().sum();
    assert!(quota < upper * 1.2, "quota {quota} stays below the bounds' ceiling {upper}");
}

#[test]
fn builds_are_deterministic() {
    let a = Graf::build(app(), quick_cfg(7));
    let b = Graf::build(app(), quick_cfg(7));
    assert_eq!(a.bounds, b.bounds);
    assert_eq!(a.samples.len(), b.samples.len());
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert_eq!(x.quotas_mc, y.quotas_mc);
        assert_eq!(x.p99_ms, y.p99_ms);
    }
    let mut ca = a.controller(40.0);
    let mut cb = b.controller(40.0);
    let (qa, _) = ca.plan(&[100.0]);
    let (qb, _) = cb.plan(&[100.0]);
    assert_eq!(qa, qb, "identical builds plan identically");
}
