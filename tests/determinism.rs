//! Integration: whole-experiment determinism — identical seeds produce
//! bit-identical outcomes across the full stack (simulator + orchestrator +
//! load generation + autoscaler).

use graf::apps::online_boutique;
use graf::loadgen::ClosedLoop;
use graf::orchestrator::{
    run_experiment, Cluster, CreationModel, Deployment, ExperimentHooks, HpaConfig, KubernetesHpa,
};
use graf::sim::events::QueueKind;
use graf::sim::time::SimTime;
use graf::sim::topology::{ApiId, ServiceId};
use graf::sim::world::{SimConfig, World};

fn run_once(seed: u64) -> (u64, u64, Vec<u64>, usize) {
    run_once_with(seed, QueueKind::Calendar)
}

fn run_once_with(seed: u64, kind: QueueKind) -> (u64, u64, Vec<u64>, usize) {
    let topo = online_boutique();
    let world =
        World::new(topo.clone(), SimConfig { event_queue: kind, ..SimConfig::default() }, seed);
    let deployments =
        (0..topo.num_services()).map(|s| Deployment::new(ServiceId(s as u16), 100.0, 3)).collect();
    let mut cluster = Cluster::new(world, deployments, CreationModel::default());
    let mut users = ClosedLoop::with_mix(
        vec![(ApiId(0), 3.0), (ApiId(1), 3.0), (ApiId(2), 4.0)],
        300,
        seed ^ 1,
    );
    let mut hpa = KubernetesHpa::new(HpaConfig::with_threshold(0.5), 6);
    let mut latencies = Vec::new();
    let mut on_segment = |_: &mut Cluster, comps: &[graf::sim::world::Completion]| {
        latencies.extend(comps.iter().map(|c| c.latency_us()));
    };
    let mut hooks = ExperimentHooks { on_segment: Some(&mut on_segment), on_control: None };
    run_experiment(&mut cluster, &mut users, &mut hpa, SimTime::from_secs(120.0), &mut hooks);
    let stats = cluster.world().stats();
    (stats.completed, stats.events, latencies, cluster.total_instances())
}

#[test]
fn same_seed_same_everything() {
    let a = run_once(77);
    let b = run_once(77);
    assert_eq!(a.0, b.0, "completed counts match");
    assert_eq!(a.1, b.1, "event counts match");
    assert_eq!(a.2, b.2, "every latency matches bit-for-bit");
    assert_eq!(a.3, b.3, "final instance counts match");
    assert!(a.0 > 1000, "the run actually did work ({} completions)", a.0);
}

/// Seed × queue-implementation matrix: the calendar-queue event core and the
/// reference binary-heap core must produce bit-identical completion streams
/// (latencies and counts), event totals, and scaling trajectories for the
/// full pilot-style experiment — the acceptance bar for swapping the queue.
#[test]
fn calendar_and_heap_cores_are_bit_identical() {
    for seed in [7, 77, 402] {
        let cal = run_once_with(seed, QueueKind::Calendar);
        let heap = run_once_with(seed, QueueKind::Heap);
        assert_eq!(cal.0, heap.0, "completed counts match (seed {seed})");
        assert_eq!(cal.1, heap.1, "event counts match (seed {seed})");
        assert_eq!(cal.2, heap.2, "every latency matches bit-for-bit (seed {seed})");
        assert_eq!(cal.3, heap.3, "final instance counts match (seed {seed})");
        assert!(cal.0 > 1000, "the run actually did work ({} completions)", cal.0);
    }
}

#[test]
fn different_seed_different_trajectory() {
    let a = run_once(77);
    let c = run_once(78);
    assert_ne!(a.2, c.2, "different seeds explore different randomness");
}

/// Data-parallel training is thread-count invariant: a [`LatencyModel`]
/// trained with one worker and one trained with three produce bit-identical
/// learning curves, parameters (via predictions), and solver gradients —
/// mini-batches are sharded over fixed chunks with an index-ordered gradient
/// reduction, so the thread count never touches the numerics.
#[test]
fn parallel_training_matches_serial_bit_for_bit() {
    use graf::core::{FeatureScaler, LatencyModel, NetKind, Sample, TrainConfig};
    use graf::sim::rng::DetRng;

    fn synthetic_samples(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = DetRng::new(seed);
        let works = [1.0, 3.0, 2.0];
        (0..n)
            .map(|_| {
                let w = rng.uniform(20.0, 120.0);
                let quotas: Vec<f64> = (0..3).map(|_| rng.uniform(200.0, 2000.0)).collect();
                let mut p99 = 3.0;
                for i in 0..3 {
                    let head = (quotas[i] - w * works[i]).max(20.0);
                    p99 += 1000.0 * works[i] / head + works[i];
                }
                Sample {
                    api_rates: vec![w],
                    workloads: vec![w, w, w],
                    quotas_mc: quotas,
                    p99_ms: p99 * rng.lognormal_mean_cv(1.0, 0.08),
                }
            })
            .collect()
    }

    fn train_with(threads: usize) -> (graf::core::TrainReport, Vec<f64>, Vec<f64>) {
        let samples = synthetic_samples(400, 21);
        let scaler = FeatureScaler::fit(
            samples.iter().map(|s| (s.workloads.as_slice(), s.quotas_mc.as_slice())),
        );
        let ds = LatencyModel::dataset_from_samples(&scaler, &samples);
        let split = ds.split(0.7, 0.15, 3);
        let mut model = LatencyModel::new(
            NetKind::Gnn,
            &[(0, 1), (1, 2)],
            3,
            scaler,
            split.train.label_mean().max(1e-9),
            11,
        );
        let cfg = TrainConfig { epochs: 12, evals: 4, threads, ..Default::default() };
        let report = model.train(&split, &cfg);
        let w = [60.0, 60.0, 60.0];
        let q = [700.0, 900.0, 800.0];
        let preds = vec![model.predict_ms(&w, &q), model.predict_ms(&[90.0; 3], &[500.0; 3])];
        let grads = model.grad_quota(&w, &q);
        (report, preds, grads)
    }

    let serial = train_with(1);
    let parallel = train_with(3);
    assert_eq!(serial.0.train_loss, parallel.0.train_loss, "training losses bit-identical");
    assert_eq!(serial.0.val_loss, parallel.0.val_loss, "validation losses bit-identical");
    assert_eq!(serial.0.best_iter, parallel.0.best_iter, "same best checkpoint");
    assert_eq!(serial.1, parallel.1, "predictions bit-identical");
    assert_eq!(serial.2, parallel.2, "quota gradients bit-identical");
}

/// Sharded-simulation worker matrix: for every seed × queue kind, running
/// the boutique on the sharded executor with 1, 2, and 8 workers produces
/// bit-identical merged completion streams, trace fingerprints, and stats.
/// Worker assignment is wall-clock-only by construction (DESIGN.md §14):
/// shard layout, shard seeds, message order and merge order are all pure
/// functions of `(topology, config, seed)`.
#[test]
fn sharded_sim_is_thread_count_invariant() {
    use graf::sim::exec::{fingerprint_completions, fingerprint_traces, ShardedWorld};
    use graf::sim::rng::DetRng;

    fn run_once(seed: u64, kind: QueueKind, threads: usize) -> (Vec<(u64, u64)>, u64, u64, u64) {
        let cfg = SimConfig {
            event_queue: kind,
            request_timeout_us: None,
            return_us: 250,
            ..SimConfig::default()
        };
        let mut w = ShardedWorld::new(online_boutique(), cfg, seed, threads);
        for s in 0..6u16 {
            w.add_instances(ServiceId(s), 3, 300.0, SimTime::ZERO);
        }
        let mut rng = DetRng::new(seed ^ 0x9e37);
        for (api, rate) in [(0u16, 120.0f64), (1, 120.0), (2, 160.0)] {
            let mut t = 0.0;
            loop {
                t += rng.exp(1e6 / rate);
                if t >= 2e6 {
                    break;
                }
                w.inject(ApiId(api), SimTime(t as u64));
            }
        }
        w.run_until(SimTime::from_secs(2.0));
        w.run_to_quiescence(SimTime::from_secs(10.0));
        let comps = w.drain_completions();
        let lats: Vec<(u64, u64)> = comps.iter().map(|c| (c.start.0, c.latency_us())).collect();
        let traces = w.drain_traces();
        assert!(comps.len() > 500, "the run actually did work ({} completions)", comps.len());
        (lats, fingerprint_completions(&comps), fingerprint_traces(&traces), w.stats().events)
    }

    for seed in [7, 77, 402] {
        for kind in [QueueKind::Calendar, QueueKind::Heap] {
            let one = run_once(seed, kind, 1);
            for threads in [2, 8] {
                let many = run_once(seed, kind, threads);
                assert_eq!(
                    one, many,
                    "1 vs {threads} workers diverged (seed {seed}, {kind:?} queue)"
                );
            }
        }
    }
}

/// End-to-end GRAF pipeline (build → controller-driven experiment) with
/// telemetry enabled vs disabled: decisions and measurements must be
/// bit-identical — the obs layer observes, it never perturbs.
#[test]
fn telemetry_does_not_perturb_the_pipeline() {
    use graf::core::{Graf, GrafBuildConfig, SamplingConfig, TrainConfig};
    use graf::obs::Obs;
    use graf::sim::topology::{ApiSpec, AppTopology, CallNode, ServiceSpec};

    fn tiny_topo() -> AppTopology {
        AppTopology::new(
            "tiny",
            vec![ServiceSpec::new("a", 1.0, 300), ServiceSpec::new("b", 2.5, 300)],
            vec![ApiSpec::new("get", CallNode::new(0).call(CallNode::new(1)))],
        )
    }

    fn run_pipeline(obs: &Obs) -> (Vec<f64>, Vec<usize>, Vec<u64>, u64) {
        let cfg = GrafBuildConfig {
            sampling: SamplingConfig {
                probe_qps: vec![40.0],
                measure_secs: 3.0,
                warmup_secs: 1.5,
                abundant_quota_mc: 2500.0,
                threads: 4,
                ..SamplingConfig::default()
            },
            train: TrainConfig { epochs: 10, evals: 3, ..Default::default() },
            num_samples: 60,
            ..Default::default()
        };
        let graf = Graf::build_observed(tiny_topo(), cfg, obs);
        let mut ctrl = graf.controller(80.0);
        ctrl.set_obs(obs.clone());

        let world = World::new(tiny_topo(), SimConfig::default(), 5);
        let mut cluster = Cluster::new(
            world,
            vec![Deployment::new(ServiceId(0), 100.0, 2), Deployment::new(ServiceId(1), 100.0, 2)],
            CreationModel::default(),
        );
        cluster.set_obs(obs.clone());
        let mut users = ClosedLoop::with_mix(vec![(ApiId(0), 1.0)], 60, 9);
        let mut latencies = Vec::new();
        let mut on_segment = |_: &mut Cluster, comps: &[graf::sim::world::Completion]| {
            latencies.extend(comps.iter().map(|c| c.latency_us()));
        };
        let mut hooks = ExperimentHooks { on_segment: Some(&mut on_segment), on_control: None };
        run_experiment(&mut cluster, &mut users, &mut ctrl, SimTime::from_secs(60.0), &mut hooks);
        let desired: Vec<usize> = cluster.deployments().iter().map(|d| d.desired).collect();
        (ctrl.last_quotas_mc.clone(), desired, latencies, cluster.world().stats().events)
    }

    let enabled = Obs::enabled();
    let on = run_pipeline(&enabled);
    let off = run_pipeline(&Obs::disabled());
    assert_eq!(on.0, off.0, "planned quotas are bit-identical");
    assert_eq!(on.1, off.1, "instance decisions are bit-identical");
    assert_eq!(on.2, off.2, "every latency is bit-identical");
    assert_eq!(on.3, off.3, "event counts are bit-identical");

    // The enabled run actually captured the pipeline.
    let names: Vec<&str> = enabled.events().iter().map(|e| e.name).collect();
    assert!(names.contains(&"graf.sample.bounds"), "bound-search span recorded");
    assert!(names.contains(&"graf.sample.collect"), "sample fan-out span recorded");
    assert!(names.contains(&"graf.train"), "training span recorded");
    assert!(names.contains(&"graf.train.eval"), "training eval points recorded");
    assert!(names.contains(&"graf.controller.tick"), "controller tick spans recorded");
    assert!(names.contains(&"graf.solver.solve"), "solver spans recorded");
    let prom = enabled.render_prometheus();
    assert!(prom.contains("graf_sim_events"), "world events counted:\n{prom}");
    assert!(prom.contains("graf_cluster_creations_started"), "creations counted:\n{prom}");
}
