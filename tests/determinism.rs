//! Integration: whole-experiment determinism — identical seeds produce
//! bit-identical outcomes across the full stack (simulator + orchestrator +
//! load generation + autoscaler).

use graf::apps::online_boutique;
use graf::loadgen::ClosedLoop;
use graf::orchestrator::{
    run_experiment, Cluster, CreationModel, Deployment, ExperimentHooks, HpaConfig, KubernetesHpa,
};
use graf::sim::time::SimTime;
use graf::sim::topology::{ApiId, ServiceId};
use graf::sim::world::{SimConfig, World};

fn run_once(seed: u64) -> (u64, u64, Vec<u64>, usize) {
    let topo = online_boutique();
    let world = World::new(topo.clone(), SimConfig::default(), seed);
    let deployments = (0..topo.num_services())
        .map(|s| Deployment::new(ServiceId(s as u16), 100.0, 3))
        .collect();
    let mut cluster = Cluster::new(world, deployments, CreationModel::default());
    let mut users = ClosedLoop::with_mix(
        vec![(ApiId(0), 3.0), (ApiId(1), 3.0), (ApiId(2), 4.0)],
        300,
        seed ^ 1,
    );
    let mut hpa = KubernetesHpa::new(HpaConfig::with_threshold(0.5), 6);
    let mut latencies = Vec::new();
    let mut on_segment = |_: &mut Cluster, comps: &[graf::sim::world::Completion]| {
        latencies.extend(comps.iter().map(|c| c.latency_us()));
    };
    let mut hooks = ExperimentHooks { on_segment: Some(&mut on_segment), on_control: None };
    run_experiment(
        &mut cluster,
        &mut users,
        &mut hpa,
        SimTime::from_secs(120.0),
        &mut hooks,
    );
    let stats = cluster.world().stats();
    (stats.completed, stats.events, latencies, cluster.total_instances())
}

#[test]
fn same_seed_same_everything() {
    let a = run_once(77);
    let b = run_once(77);
    assert_eq!(a.0, b.0, "completed counts match");
    assert_eq!(a.1, b.1, "event counts match");
    assert_eq!(a.2, b.2, "every latency matches bit-for-bit");
    assert_eq!(a.3, b.3, "final instance counts match");
    assert!(a.0 > 1000, "the run actually did work ({} completions)", a.0);
}

#[test]
fn different_seed_different_trajectory() {
    let a = run_once(77);
    let c = run_once(78);
    assert_ne!(a.2, c.2, "different seeds explore different randomness");
}
