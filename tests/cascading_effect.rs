//! Integration: the cascading effect (§2.1) — chain-oblivious autoscaling
//! perceives a surge one chain level at a time, while proactive whole-chain
//! creation does not. Spans graf-apps, graf-orchestrator and graf-loadgen.

use graf::apps::{boutique, online_boutique};
use graf::loadgen::{LoadGen, OpenLoop};
use graf::orchestrator::{
    run_experiment, Autoscaler, Cluster, CreationModel, Deployment, ExperimentHooks, HpaConfig,
    KubernetesHpa, ProactiveOnce,
};
use graf::sim::time::SimTime;
use graf::sim::topology::{ApiId, ServiceId};
use graf::sim::world::{SimConfig, World};

const BASE_QPS: f64 = 50.0;
const SURGE_QPS: f64 = 250.0;
const WARMUP_S: f64 = 360.0;
const END_S: f64 = WARMUP_S + 240.0;

/// Per-service times (s after surge) to perceive 80 % of the surge rate.
fn perceive_times(scaler: &mut dyn Autoscaler, seed: u64) -> Vec<f64> {
    let topo = online_boutique();
    let world = World::new(topo.clone(), SimConfig::default(), seed);
    let api = ApiId(boutique::API_CART);
    let deployments = (0..topo.num_services() as u16)
        .map(|s| {
            let offered =
                BASE_QPS * topo.multiplicity(api, ServiceId(s)) * topo.services[s as usize].work_ms;
            Deployment::new(ServiceId(s), 100.0, ((offered * 1.8 + 60.0) / 100.0).ceil() as usize)
        })
        .collect();
    let mut cluster = Cluster::new(world, deployments, CreationModel::default());
    let mut load = OpenLoop::new(seed)
        .poisson()
        .schedule(api, vec![(SimTime::ZERO, BASE_QPS), (SimTime::from_secs(WARMUP_S), SURGE_QPS)]);

    let n = topo.num_services();
    let mut first_peak = vec![f64::NAN; n];
    {
        let mut on_segment = |cluster: &mut Cluster, _: &[_]| {
            let now = cluster.world().now().as_secs_f64();
            if now < WARMUP_S {
                return;
            }
            for (s, slot) in first_peak.iter_mut().enumerate() {
                if slot.is_nan() {
                    let svc = ServiceId(s as u16);
                    let rate = cluster.world().service_arrival_rate(svc, 5);
                    let mult = cluster.world().topology().multiplicity(api, svc);
                    if rate >= 0.8 * SURGE_QPS * mult {
                        *slot = now - WARMUP_S;
                    }
                }
            }
        };
        let mut hooks = ExperimentHooks { on_segment: Some(&mut on_segment), on_control: None };
        run_experiment(
            &mut cluster,
            &mut load as &mut dyn LoadGen,
            scaler,
            SimTime::from_secs(END_S),
            &mut hooks,
        );
    }
    first_peak
}

fn proactive_targets() -> Vec<(ServiceId, usize)> {
    let topo = online_boutique();
    let api = ApiId(boutique::API_CART);
    (0..topo.num_services() as u16)
        .map(|s| {
            let offered = SURGE_QPS
                * topo.multiplicity(api, ServiceId(s))
                * topo.services[s as usize].work_ms;
            (ServiceId(s), ((offered * 1.8 + 60.0) / 100.0).ceil() as usize)
        })
        .collect()
}

#[test]
fn hpa_staggers_perception_proactive_does_not() {
    let mut hpa = KubernetesHpa::new(HpaConfig::with_threshold(0.5), 6);
    let hpa_peaks = perceive_times(&mut hpa, 21);
    let mut pro = ProactiveOnce::new(SimTime::from_secs(WARMUP_S), proactive_targets());
    let pro_peaks = perceive_times(&mut pro, 21);

    let finite = |v: &[f64]| v.iter().all(|x| x.is_finite());
    assert!(finite(&pro_peaks), "proactive: every service reaches peak: {pro_peaks:?}");

    // The front end perceives the surge quickly in both cases.
    assert!(hpa_peaks[0] <= 15.0, "frontend sees the surge immediately: {hpa_peaks:?}");

    // Under the HPA the deepest chain members lag the front end more than
    // under proactive creation.
    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
    };
    let hpa_spread = spread(&hpa_peaks);
    let pro_spread = spread(&pro_peaks);
    assert!(
        hpa_spread >= pro_spread,
        "cascading: HPA spread {hpa_spread:.0}s >= proactive spread {pro_spread:.0}s \
         (hpa {hpa_peaks:?}, proactive {pro_peaks:?})"
    );
    assert!(hpa_spread >= 20.0, "HPA perception is staggered down the chain: {hpa_peaks:?}");
}
