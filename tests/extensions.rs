//! Integration: the §6 extensions working end-to-end on a live simulated
//! cluster — integer refinement through the controller, the anomaly guard
//! around GRAF, and the partitioned latency model on real collected samples.

use graf::core::sample_collector::SamplingConfig;
use graf::core::{
    AnomalyGuard, AnomalyGuardConfig, Graf, GrafBuildConfig, GrafControllerConfig, NetKind,
    PartitionedLatencyModel, TrainConfig,
};
use graf::orchestrator::{Autoscaler, Cluster, CreationModel, Deployment};
use graf::sim::time::SimTime;
use graf::sim::topology::{ApiId, ApiSpec, AppTopology, CallNode, ServiceId, ServiceSpec};
use graf::sim::world::{SimConfig, World};

fn app() -> AppTopology {
    AppTopology::new(
        "ext-app",
        vec![
            ServiceSpec::new("edge", 0.4, 300),
            ServiceSpec::new("mid", 0.8, 250),
            ServiceSpec::new("leaf", 0.5, 250),
        ],
        vec![ApiSpec::new("req", CallNode::new(0).call(CallNode::new(1).call(CallNode::new(2))))],
    )
}

fn build(seed: u64) -> Graf {
    Graf::build(
        app(),
        GrafBuildConfig {
            sampling: SamplingConfig {
                probe_qps: vec![120.0],
                slo_ms: 40.0,
                cpu_unit_mc: 100.0,
                measure_secs: 4.0,
                warmup_secs: 2.0,
                threads: 8,
                seed,
                ..SamplingConfig::default()
            },
            train: TrainConfig { epochs: 150, evals: 10, seed, ..Default::default() },
            num_samples: 350,
            split_seed: seed ^ 0xE1,
            ..Default::default()
        },
    )
}

#[test]
fn integer_refinement_is_leaner_and_still_meets_slo_live() {
    let graf = build(23);
    let slo = 40.0;

    let run = |refine: bool| -> (usize, f64) {
        let mut ctrl = graf.controller_with(GrafControllerConfig {
            slo_ms: slo,
            train_total_qps: graf.train_total_qps(),
            integer_refine: refine,
            ..Default::default()
        });
        let world = World::new(app(), SimConfig::default(), 91);
        let deployments = (0..3).map(|s| Deployment::new(ServiceId(s as u16), 100.0, 4)).collect();
        let mut cluster = Cluster::new(world, deployments, CreationModel::instant());
        let mut rng = graf::sim::rng::DetRng::new(6);
        let mut t = 0.0f64;
        let end = SimTime::from_secs(150.0);
        let mut arrivals = Vec::new();
        loop {
            t += rng.exp(1e6 / 120.0);
            if t >= end.as_micros() as f64 {
                break;
            }
            arrivals.push(SimTime(t as u64));
        }
        let mut next = SimTime::from_secs(15.0);
        let mut ai = 0;
        while cluster.world().now() < end {
            let to = next.min(end);
            while ai < arrivals.len() && arrivals[ai] < to {
                cluster.world_mut().inject(ApiId(0), arrivals[ai]);
                ai += 1;
            }
            cluster.world_mut().run_until(to);
            ctrl.tick(&mut cluster);
            next = SimTime(next.0 + 15_000_000);
        }
        let p99 = cluster.world().e2e_percentile(60, 0.99).unwrap().as_millis_f64();
        (cluster.total_instances(), p99)
    };

    let (plain_inst, plain_p99) = run(false);
    let (refined_inst, refined_p99) = run(true);
    assert!(refined_inst <= plain_inst, "refined {refined_inst} <= ceil {plain_inst}");
    assert!(plain_p99 <= slo * 1.6, "ceil variant in band: {plain_p99}");
    assert!(refined_p99 <= slo * 1.7, "refined variant in band: {refined_p99}");
}

#[test]
fn anomaly_guard_wraps_graf_and_reacts_to_injected_contention() {
    let graf = build(29);
    let inner = graf.controller(40.0);
    let mut guard = AnomalyGuard::new(inner, 3, AnomalyGuardConfig::default());

    let mut world = World::new(app(), SimConfig::default(), 92);
    world.inject_contention(
        ServiceId(1),
        5.0,
        SimTime::from_secs(120.0),
        SimTime::from_secs(200.0),
    );
    let deployments = (0..3).map(|s| Deployment::new(ServiceId(s as u16), 100.0, 4)).collect();
    let mut cluster = Cluster::new(world, deployments, CreationModel::instant());
    let mut rng = graf::sim::rng::DetRng::new(8);
    let mut t = 0.0f64;
    let end = SimTime::from_secs(240.0);
    let mut arrivals = Vec::new();
    loop {
        t += rng.exp(1e6 / 120.0);
        if t >= end.as_micros() as f64 {
            break;
        }
        arrivals.push(SimTime(t as u64));
    }
    let mut next = SimTime::from_secs(15.0);
    let mut ai = 0;
    while cluster.world().now() < end {
        let to = next.min(end);
        while ai < arrivals.len() && arrivals[ai] < to {
            cluster.world_mut().inject(ApiId(0), arrivals[ai]);
            ai += 1;
        }
        cluster.world_mut().run_until(to);
        guard.tick(&mut cluster);
        next = SimTime(next.0 + 15_000_000);
    }
    assert!(guard.triggers >= 1, "contention on 'mid' detected");
}

#[test]
fn partitioned_model_tracks_the_full_model_on_real_samples() {
    let graf = build(31);
    let (part, reports) = PartitionedLatencyModel::build(
        NetKind::Gnn,
        graf.analyzer.edges(),
        3,
        2,
        graf.model.scaler,
        &graf.samples,
        &graf.build_cfg.train,
        graf.build_cfg.split_seed,
    );
    assert_eq!(part.num_parts(), 2);
    assert_eq!(reports.len(), 2);
    // Each sub-model is smaller than the full model.
    assert!(part.num_params() < 2 * graf.model.num_params());
    let mut full_mape = 0.0;
    for s in &graf.samples {
        let p = graf.model.predict_ms(&s.workloads, &s.quotas_mc);
        full_mape += ((p - s.p99_ms) / s.p99_ms.max(1e-9)).abs();
    }
    full_mape *= 100.0 / graf.samples.len() as f64;
    let part_mape = part.mape(&graf.samples);
    assert!(
        part_mape < full_mape * 3.0 + 10.0,
        "partitioned error stays in the same regime: {part_mape:.1}% vs {full_mape:.1}%"
    );
}
