//! Integration: fault injection is deterministic and strictly opt-in —
//! a chaos-enabled run is bit-identical across same-seed executions, and an
//! armed-but-empty schedule is bit-identical to never arming chaos at all.

use graf::apps::online_boutique;
use graf::chaos::{ChaosSchedule, FaultKind};
use graf::loadgen::ClosedLoop;
use graf::orchestrator::{
    run_experiment, Cluster, CreationModel, Deployment, ExperimentHooks, HpaConfig, KubernetesHpa,
};
use graf::sim::events::QueueKind;
use graf::sim::time::SimTime;
use graf::sim::topology::{ApiId, ServiceId};
use graf::sim::world::{SimConfig, World, WorldStats};

/// Runs a 120 s closed-loop HPA experiment on Online Boutique, optionally
/// with a chaos schedule armed on the cluster, and returns every observable
/// the stack produces: world stats, the bit-exact latency stream and the
/// final instance counts.
fn run_once(seed: u64, schedule: Option<&ChaosSchedule>) -> (WorldStats, Vec<u64>, usize) {
    run_once_with(seed, schedule, QueueKind::Calendar)
}

fn run_once_with(
    seed: u64,
    schedule: Option<&ChaosSchedule>,
    kind: QueueKind,
) -> (WorldStats, Vec<u64>, usize) {
    let topo = online_boutique();
    let world =
        World::new(topo.clone(), SimConfig { event_queue: kind, ..SimConfig::default() }, seed);
    let deployments =
        (0..topo.num_services()).map(|s| Deployment::new(ServiceId(s as u16), 100.0, 3)).collect();
    let mut cluster = Cluster::new(world, deployments, CreationModel::default());
    if let Some(s) = schedule {
        cluster.arm_chaos(s);
    }
    let mut users = ClosedLoop::with_mix(
        vec![(ApiId(0), 3.0), (ApiId(1), 3.0), (ApiId(2), 4.0)],
        300,
        seed ^ 1,
    );
    let mut hpa = KubernetesHpa::new(HpaConfig::with_threshold(0.5), 6);
    let mut latencies = Vec::new();
    let mut on_segment = |_: &mut Cluster, comps: &[graf::sim::world::Completion]| {
        latencies.extend(comps.iter().map(|c| c.latency_us()));
    };
    let mut hooks = ExperimentHooks { on_segment: Some(&mut on_segment), on_control: None };
    run_experiment(&mut cluster, &mut users, &mut hpa, SimTime::from_secs(120.0), &mut hooks);
    let stats = cluster.world().stats();
    (stats, latencies, cluster.total_instances())
}

/// A schedule exercising every cluster/world-level fault class at once.
fn stormy(seed: u64) -> ChaosSchedule {
    ChaosSchedule::new(seed)
        .fault(
            FaultKind::TraceDrop { drop_prob: 0.4 },
            SimTime::from_secs(20.0),
            SimTime::from_secs(60.0),
        )
        .fault(
            FaultKind::CreationFail { prob: 0.7 },
            SimTime::from_secs(30.0),
            SimTime::from_secs(80.0),
        )
        .fault(
            FaultKind::SlowStart { factor: 3.0 },
            SimTime::from_secs(30.0),
            SimTime::from_secs(80.0),
        )
        .fault(
            FaultKind::LatencySpike { service: ServiceId(2), factor: 2.5 },
            SimTime::from_secs(40.0),
            SimTime::from_secs(70.0),
        )
}

#[test]
fn chaos_run_is_bit_identical_per_seed() {
    let a = run_once(91, Some(&stormy(91)));
    let b = run_once(91, Some(&stormy(91)));
    assert_eq!(a.0.completed, b.0.completed, "completed counts match");
    assert_eq!(a.0.events, b.0.events, "event counts match");
    assert_eq!(a.0.spans_dropped, b.0.spans_dropped, "identical spans dropped");
    assert_eq!(a.1, b.1, "every latency matches bit-for-bit under faults");
    assert_eq!(a.2, b.2, "final instance counts match");
    assert!(a.0.spans_dropped > 0, "the trace-drop fault actually fired");
}

/// The chaos_matrix acceptance scenario under both event cores: with every
/// fault class firing at once, the calendar queue and the reference heap
/// still produce bit-identical completion streams and scaling trajectories.
#[test]
fn chaos_matrix_is_bit_identical_across_queue_cores() {
    let cal = run_once_with(91, Some(&stormy(91)), QueueKind::Calendar);
    let heap = run_once_with(91, Some(&stormy(91)), QueueKind::Heap);
    assert_eq!(cal.0.completed, heap.0.completed, "completed counts match");
    assert_eq!(cal.0.events, heap.0.events, "event counts match");
    assert_eq!(cal.0.spans_dropped, heap.0.spans_dropped, "identical spans dropped");
    assert_eq!(cal.1, heap.1, "every latency matches bit-for-bit under faults");
    assert_eq!(cal.2, heap.2, "final instance counts match");
}

#[test]
fn chaos_schedule_seed_perturbs_the_faults_only_plausibly() {
    // Different schedule seeds draw different fault outcomes even when the
    // world seed is fixed — the fault stream is fed by the schedule's seed,
    // not silently shared with the simulation's.
    let a = run_once(91, Some(&stormy(91)));
    let c = run_once(91, Some(&stormy(4242)));
    assert_ne!(
        (a.0.spans_dropped, a.1.clone()),
        (c.0.spans_dropped, c.1.clone()),
        "schedule seed feeds the fault draws"
    );
}

#[test]
fn empty_schedule_is_bit_identical_to_no_chaos() {
    let empty = ChaosSchedule::new(91);
    let armed = run_once(91, Some(&empty));
    let bare = run_once(91, None);
    assert_eq!(armed.0.completed, bare.0.completed, "completed counts match");
    assert_eq!(armed.0.events, bare.0.events, "event counts match");
    assert_eq!(armed.0.spans_dropped, 0, "no faults, no dropped spans");
    assert_eq!(armed.1, bare.1, "arming an empty schedule changes nothing");
    assert_eq!(armed.2, bare.2, "final instance counts match");
}

#[test]
fn span_drop_truncates_traces_and_nothing_else() {
    let drops = ChaosSchedule::new(7).fault(
        FaultKind::TraceDrop { drop_prob: 0.5 },
        SimTime::from_secs(10.0),
        SimTime::from_secs(110.0),
    );
    let faulty = run_once(55, Some(&drops));
    let clean = run_once(55, None);
    assert!(faulty.0.spans_dropped > 0, "spans were dropped");
    assert!(
        faulty.0.spans < clean.0.spans,
        "the trace store saw fewer spans ({} < {})",
        faulty.0.spans,
        clean.0.spans
    );
    // Trace faults are observability-only: the actual request stream is
    // untouched, so latencies and scaling behaviour match the clean run.
    assert_eq!(faulty.1, clean.1, "latency stream unaffected by span drops");
    assert_eq!(faulty.2, clean.2, "instance counts unaffected by span drops");
}

/// Chaos bit-identity on the sharded executor: with a contention anomaly and
/// a span-drop fault window armed, a 1-worker and a 4-worker run produce
/// bit-identical completion streams, drop counts, and trace fingerprints
/// (`--sim-threads 4` in the CI gate exercises the same property). Fault
/// draws come from per-shard seeded streams, so which worker executes a
/// shard can never reach the fault decisions.
#[test]
fn sharded_chaos_is_worker_count_invariant() {
    use graf::sim::exec::{fingerprint_completions, fingerprint_traces, ShardedWorld};
    use graf::sim::rng::DetRng;

    fn run_once(threads: usize) -> (Vec<u64>, u64, u64, u64, u64) {
        let cfg = SimConfig { request_timeout_us: None, return_us: 250, ..SimConfig::default() };
        let mut w = ShardedWorld::new(online_boutique(), cfg, 55, threads);
        for s in 0..6u16 {
            w.add_instances(ServiceId(s), 3, 300.0, SimTime::ZERO);
        }
        w.inject_contention(ServiceId(4), 3.0, SimTime::from_secs(0.5), SimTime::from_secs(1.5));
        w.inject_span_drop(SimTime::from_secs(0.5), SimTime::from_secs(1.5), 0.4);
        let mut rng = DetRng::new(55 ^ 0x9e37);
        for (api, rate) in [(0u16, 120.0f64), (1, 120.0), (2, 160.0)] {
            let mut t = 0.0;
            loop {
                t += rng.exp(1e6 / rate);
                if t >= 2e6 {
                    break;
                }
                w.inject(ApiId(api), SimTime(t as u64));
            }
        }
        w.run_until(SimTime::from_secs(2.0));
        w.run_to_quiescence(SimTime::from_secs(10.0));
        let comps = w.drain_completions();
        let lats: Vec<u64> = comps.iter().map(|c| c.latency_us()).collect();
        let traces = w.drain_traces();
        let stats = w.stats();
        assert!(stats.spans_dropped > 0, "the fault window actually dropped spans");
        (
            lats,
            fingerprint_completions(&comps),
            fingerprint_traces(&traces),
            stats.spans_dropped,
            stats.events,
        )
    }

    let one = run_once(1);
    let four = run_once(4);
    assert_eq!(one, four, "1 vs 4 workers diverged under chaos");
}
