#!/usr/bin/env bash
# Runs every table/figure binary and collects outputs under results/.
# Pass flags through, e.g.:  ./run_all_experiments.sh --paper-scale
set -euo pipefail
cd "$(dirname "$0")"

ARGS=("$@")
OUT=results
mkdir -p "$OUT"

BINS=(
  fig01_instance_creation
  topologies
  fig02_03_surge_hpa
  fig06_latency_curves
  fig07_cascading
  table1_hyperparams
  table2_prediction_error
  fig11_ablation_mpnn
  fig12_loss_heatmap
  fig13_search_space
  fig14_16_resource_saving
  fig17_slo_targeting
  fig18_user_scaling
  fig19_cost_benefit
  table3_budget
  fig20_real_workload
  fig21_22_surge_comparison
  chaos_matrix
  solver_latency
  ablation_loss
  ablation_sampling
  ablation_integer
  ablation_anomaly
  ablation_partition
)

cargo build --release -p graf-bench --bins

for bin in "${BINS[@]}"; do
  echo "== $bin =="
  cargo run --quiet --release -p graf-bench --bin "$bin" -- "${ARGS[@]}" \
    | tee "$OUT/$bin.txt"
done

echo "All outputs in $OUT/"
