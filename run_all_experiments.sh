#!/usr/bin/env bash
# Runs every table/figure binary and collects outputs under results/.
#
# Keep-going semantics: a failing binary no longer aborts the run — every
# binary gets its turn, failures are collected, a summary is printed, and
# the exit code is nonzero iff anything failed. Binaries run in a small
# parallel pool (GRAF_JOBS, default 4; set GRAF_JOBS=1 for serial).
#
# Pass flags through, e.g.:  ./run_all_experiments.sh --paper-scale
set -uo pipefail
cd "$(dirname "$0")"

ARGS=("$@")
OUT=results
JOBS="${GRAF_JOBS:-4}"
mkdir -p "$OUT"

BINS=(
  fig01_instance_creation
  topologies
  fig02_03_surge_hpa
  fig06_latency_curves
  fig07_cascading
  table1_hyperparams
  table2_prediction_error
  fig11_ablation_mpnn
  fig12_loss_heatmap
  fig13_search_space
  fig14_16_resource_saving
  fig17_slo_targeting
  fig18_user_scaling
  fig19_cost_benefit
  table3_budget
  fig20_real_workload
  fig21_22_surge_comparison
  chaos_matrix
  solver_latency
  ablation_loss
  ablation_sampling
  ablation_integer
  ablation_anomaly
  ablation_partition
)

# Build once up front; running from target/ afterwards keeps the pool free
# of cargo lock contention. A build failure is fatal — nothing can run.
cargo build --release -p graf-bench --bins || exit 1

# Each job drops a marker file on failure; the summary is collected after
# the whole pool drains, so one bad binary never silences the rest.
FAILDIR="$(mktemp -d)"
trap 'rm -rf "$FAILDIR"' EXIT

run_one() {
  local bin="$1"
  if "target/release/$bin" "${ARGS[@]}" >"$OUT/$bin.txt" 2>"$OUT/$bin.err"; then
    rm -f "$OUT/$bin.err"
    echo "ok   $bin"
  else
    touch "$FAILDIR/$bin"
    echo "FAIL $bin (output: $OUT/$bin.txt, stderr: $OUT/$bin.err)"
  fi
}

for bin in "${BINS[@]}"; do
  # Throttle to $JOBS concurrent binaries.
  while (( $(jobs -rp | wc -l) >= JOBS )); do
    wait -n || true
  done
  run_one "$bin" &
done
wait

# Parallel-sim ablation (EXPERIMENTS.md §8): the threads × queue × tier grid
# via graf-sweep. Runs after the pool because graf-sweep takes
# subcommand-style args, not the shared experiment flags; only --quick and
# --sim-threads carry over.
SWEEP_FLAGS=()
for a in "${ARGS[@]+"${ARGS[@]}"}"; do
  case "$a" in
    --quick) SWEEP_FLAGS+=(--quick) ;;
  esac
done
if target/release/graf-sweep run --grid @parsim --workers "$JOBS" --seed 7 \
    "${SWEEP_FLAGS[@]+"${SWEEP_FLAGS[@]}"}" \
    --out "$OUT/parallel_sim_ablation.jsonl" \
    >"$OUT/parallel_sim_ablation.txt" 2>"$OUT/parallel_sim_ablation.err"; then
  rm -f "$OUT/parallel_sim_ablation.err"
  echo "ok   parallel_sim_ablation"
else
  touch "$FAILDIR/parallel_sim_ablation"
  echo "FAIL parallel_sim_ablation (output: $OUT/parallel_sim_ablation.txt)"
fi
BINS+=(parallel_sim_ablation)

echo
FAILED=()
for bin in "${BINS[@]}"; do
  [[ -e "$FAILDIR/$bin" ]] && FAILED+=("$bin")
done
if (( ${#FAILED[@]} > 0 )); then
  echo "${#FAILED[@]}/${#BINS[@]} experiment(s) FAILED:"
  for bin in "${FAILED[@]}"; do
    echo "  - $bin (see $OUT/$bin.err)"
  done
  exit 1
fi
echo "All ${#BINS[@]} experiments passed; outputs in $OUT/"
