#!/usr/bin/env bash
# Workspace call-graph analysis, human view: reachability stats, the ten
# largest call cycles (SCCs) and the pre-suppression taint frontier, then the
# gated findings. Extra flags pass through to graf-lint, e.g.:
#
#   scripts/analyze.sh            # summary + gate
#   scripts/analyze.sh --json     # summary + machine-readable findings and
#                                 # the suppression inventory
#
# For the raw graph, use `cargo run -p graf-lint -- --callgraph` (JSONL,
# byte-identical across runs — diffable between revisions).
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -q -p graf-lint -- --summary "$@"
