#!/usr/bin/env bash
# CI gate: build, test, formatting, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings; missing_docs denied per-crate) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== doctests =="
cargo test -q --workspace --doc

echo "== graf-lint (fails on findings beyond lint.baseline) =="
cargo run --release -p graf-lint -- --json

echo "== sanitizer: zero-allocation steady state =="
cargo test -q -p graf-nn --features sanitize
cargo test -q -p graf-gnn --features sanitize --test sanitize
cargo test -q -p graf-core --features sanitize --test sanitize
cargo test -q --features sanitize --test sim_sanitize

echo "== cargo bench --no-run =="
cargo bench --no-run

echo "== graf-perf compare (perf gate; strict coverage when both revs have history) =="
cargo run --release -q -p graf-bench --bin graf-perf -- compare HEAD~1 HEAD --strict

echo "== graf-sweep smoke (worker-count invariance: 1 worker vs 4 must be byte-identical) =="
SWEEPDIR="$(mktemp -d)"
trap 'rm -rf "$SWEEPDIR"' EXIT
cargo run --release -q -p graf-bench --bin graf-sweep -- \
  run --grid @smoke --quick --workers 1 --seed 7 --out "$SWEEPDIR/w1.jsonl" >/dev/null
cargo run --release -q -p graf-bench --bin graf-sweep -- \
  run --grid @smoke --quick --workers 4 --seed 7 --out "$SWEEPDIR/w4.jsonl" >/dev/null
cmp "$SWEEPDIR/w1.jsonl" "$SWEEPDIR/w4.jsonl" \
  || { echo "graf-sweep aggregate differs between 1 and 4 workers" >&2; exit 1; }
echo "sweep aggregates byte-identical across worker counts"

echo "== bench smoke =="
scripts/bench.sh --smoke

echo "CI OK"
