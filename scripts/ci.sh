#!/usr/bin/env bash
# CI gate: build, test, formatting, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings; missing_docs denied per-crate) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== doctests =="
cargo test -q --workspace --doc

echo "== graf-lint (fails on findings beyond lint.baseline) =="
cargo run --release -p graf-lint -- --json

echo "== graf-lint --analyze (call-graph pass: determinism taint, transitive hot allocs) =="
ANALYZE_START=$(date +%s%N)
cargo run --release -q -p graf-lint -- --analyze
ANALYZE_MS=$(( ($(date +%s%N) - ANALYZE_START) / 1000000 ))
echo "graf-lint --analyze: clean in ${ANALYZE_MS}ms"

echo "== thread sanitizer (data-parallel train + 4-worker smoke sweep) =="
if rustup component list --toolchain nightly 2>/dev/null | grep -q '^rust-src.*(installed)'; then
  TSAN_TARGET="$(rustc -vV | sed -n 's/^host: //p')"
  RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -Zbuild-std --target "$TSAN_TARGET" \
    -q --test determinism parallel_training_matches_serial_bit_for_bit
  TSANDIR="$(mktemp -d)"
  RUSTFLAGS="-Zsanitizer=thread" cargo +nightly run -Zbuild-std --target "$TSAN_TARGET" \
    --release -q -p graf-bench --bin graf-sweep -- \
    run --grid @smoke --quick --workers 4 --seed 7 --out "$TSANDIR/tsan.jsonl" >/dev/null
  rm -rf "$TSANDIR"
  echo "thread sanitizer: clean"
else
  echo "SKIPPED: thread sanitizer needs the nightly rust-src component (-Zbuild-std); not installed in this environment"
fi

echo "== miri smoke (event-queue + matrix kernel invariants) =="
if cargo +nightly miri --version >/dev/null 2>&1; then
  MIRIFLAGS="-Zmiri-deterministic-concurrency" \
    cargo +nightly miri test -q -p graf-nn matrix
  MIRIFLAGS="-Zmiri-deterministic-concurrency" \
    cargo +nightly miri test -q -p graf-sim events
  echo "miri: clean"
else
  echo "SKIPPED: miri is not installed on the nightly toolchain in this environment"
fi

echo "== sanitizer: zero-allocation steady state =="
cargo test -q -p graf-nn --features sanitize
cargo test -q -p graf-gnn --features sanitize --test sanitize
cargo test -q -p graf-core --features sanitize --test sanitize
cargo test -q --features sanitize --test sim_sanitize

echo "== cargo bench --no-run =="
cargo bench --no-run

echo "== graf-perf compare (perf gate; strict coverage when both revs have history) =="
cargo run --release -q -p graf-bench --bin graf-perf -- compare HEAD~1 HEAD --strict

echo "== graf-sweep smoke (worker-count invariance: 1 worker vs 4 must be byte-identical) =="
SWEEPDIR="$(mktemp -d)"
trap 'rm -rf "$SWEEPDIR"' EXIT
cargo run --release -q -p graf-bench --bin graf-sweep -- \
  run --grid @smoke --quick --workers 1 --seed 7 --out "$SWEEPDIR/w1.jsonl" >/dev/null
cargo run --release -q -p graf-bench --bin graf-sweep -- \
  run --grid @smoke --quick --workers 4 --seed 7 --out "$SWEEPDIR/w4.jsonl" >/dev/null
cmp "$SWEEPDIR/w1.jsonl" "$SWEEPDIR/w4.jsonl" \
  || { echo "graf-sweep aggregate differs between 1 and 4 workers" >&2; exit 1; }
echo "sweep aggregates byte-identical across worker counts"

echo "== sim-identity (sharded sim: --sim-threads 1 vs 4 must be byte-identical) =="
cargo build --release -q -p graf-bench --bin sim_identity
target/release/sim_identity --quick --seed 7 --sim-threads 1 > "$SWEEPDIR/sim_t1.txt"
target/release/sim_identity --quick --seed 7 --sim-threads 4 > "$SWEEPDIR/sim_t4.txt"
cmp "$SWEEPDIR/sim_t1.txt" "$SWEEPDIR/sim_t4.txt" \
  || { echo "sharded sim output differs between 1 and 4 workers" >&2; exit 1; }
echo "sim output byte-identical across worker counts"

echo "== bench smoke =="
scripts/bench.sh --smoke

echo "CI OK"
