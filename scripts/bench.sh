#!/usr/bin/env bash
# Compute-backend benchmark driver. Run from anywhere; operates on the repo
# root. Produces/updates BENCH_COMPUTE.json (preserving the stored baseline
# section so speedup-vs-baseline stays comparable across PRs), writes the
# simulator tiers — serial plus the sharded-executor parallel tiers
# (`*_p1/_p2/_p8`) — to BENCH_SIM.json (a "headline" name pointing into the
# "benches" array — resolve it with `graf-perf headline`, don't duplicate
# it), and appends every measurement to
# BENCH_HISTORY.jsonl tagged with the current git revision so
# `graf-perf compare <revA> <revB>` can gate perf regressions.
#
# Usage:
#   scripts/bench.sh                 # full run, updates BENCH_COMPUTE.json,
#                                    # BENCH_SIM.json and BENCH_HISTORY.jsonl
#   scripts/bench.sh --smoke         # fast sanity pass, writes no files
#   scripts/bench.sh --as-baseline   # re-capture the baseline section
#   scripts/bench.sh --threads 4     # thread the training measurements
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
EXTRA=()
for a in "$@"; do
  case "$a" in
    --smoke) SMOKE=1 ;;
    *) EXTRA+=("$a") ;;
  esac
done

cargo build --release -q -p graf-bench --bin bench_compute

if [[ "$SMOKE" == 1 ]]; then
  # Sanity pass: exercises every measurement once, writes no file.
  exec target/release/bench_compute --smoke "${EXTRA[@]+"${EXTRA[@]}"}"
fi

exec target/release/bench_compute --out BENCH_COMPUTE.json \
  --sim-out BENCH_SIM.json --history BENCH_HISTORY.jsonl \
  "${EXTRA[@]+"${EXTRA[@]}"}"
